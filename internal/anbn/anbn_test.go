package anbn

import (
	"strings"
	"testing"

	"tvgwait/internal/core"
	"tvgwait/internal/journey"
	"tvgwait/internal/lang"
	"tvgwait/internal/tvg"
)

func mustDecider(t *testing.T, params Params, mode journey.Mode, maxLen int) *core.Decider {
	t.Helper()
	a, err := New(params)
	if err != nil {
		t.Fatal(err)
	}
	h, err := HorizonForLength(params, maxLen)
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.NewDecider(a, mode, h)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Errorf("default params: %v", err)
	}
	for _, bad := range []Params{{P: 4, Q: 3}, {P: 2, Q: 2}, {P: 0, Q: 3}, {P: 2, Q: 9}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("params %+v should be invalid", bad)
		}
	}
	if _, err := New(Params{P: 6, Q: 3}); err == nil {
		t.Error("New should reject invalid params")
	}
	if _, err := HorizonForLength(Params{P: 6, Q: 3}, 4); err == nil {
		t.Error("HorizonForLength should reject invalid params")
	}
}

// TestFigure1LanguageExact is the headline E1 check: the no-wait language
// of the Figure 1 automaton equals {aⁿbⁿ : n ≥ 1} on every word of length
// at most 10, for two different prime pairs.
func TestFigure1LanguageExact(t *testing.T) {
	for _, params := range []Params{{P: 2, Q: 3}, {P: 3, Q: 5}} {
		const maxLen = 10
		d := mustDecider(t, params, journey.NoWait(), maxLen)
		ref := Reference()
		eq, witness := lang.EqualUpTo(d.Language("fig1-nowait"), ref, maxLen)
		if !eq {
			t.Errorf("p=%d q=%d: L_nowait(G) differs from a^n b^n at %q",
				params.P, params.Q, witness)
		}
	}
}

func TestFigure1AcceptsExamples(t *testing.T) {
	d := mustDecider(t, DefaultParams(), journey.NoWait(), 12)
	for _, w := range []string{"ab", "aabb", "aaabbb", "aaaabbbb", "aaaaabbbbb", "aaaaaabbbbbb"} {
		if !d.Accepts(w) {
			t.Errorf("should accept %q", w)
		}
	}
	for _, w := range []string{"", "a", "b", "ba", "aab", "abb", "abab", "aabbb", "aaabb", "bbaa"} {
		if d.Accepts(w) {
			t.Errorf("should reject %q", w)
		}
	}
}

func TestFigure1WitnessTimes(t *testing.T) {
	// The witness journey for aabb must follow the time encoding
	// 1 -a-> 2 -a-> 4 -b-> 12 -b-> accept (p=2, q=3: e4 fires at 12 = 2²·3).
	d := mustDecider(t, DefaultParams(), journey.NoWait(), 8)
	j, ok := d.Witness("aabb")
	if !ok {
		t.Fatal("aabb should have a witness")
	}
	deps := make([]tvg.Time, j.Len())
	for i, h := range j.Hops {
		deps[i] = h.Depart
	}
	want := []tvg.Time{1, 2, 4, 12}
	for i := range want {
		if deps[i] != want[i] {
			t.Fatalf("witness departures = %v, want %v", deps, want)
		}
	}
	if err := j.Validate(d.Compiled(), journey.NoWait()); err != nil {
		t.Errorf("witness invalid: %v", err)
	}
	w, err := j.Word(d.Automaton().Graph())
	if err != nil || w != "aabb" {
		t.Errorf("witness word = %q, %v", w, err)
	}
}

func TestFigure1IsDeterministic(t *testing.T) {
	a, err := New(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// The paper calls A(G) deterministic: from v0, labels a (e0) and b
	// (e1 xor e3 — presence disjoint: t>p vs t=p); from v1, b via e2 xor
	// e4 (complementary presence).
	det, err := a.IsDeterministic(200)
	if err != nil {
		t.Fatal(err)
	}
	if !det {
		t.Error("Figure 1 automaton should be deterministic")
	}
}

// TestWaitingCollapsesLanguage shows the qualitative content of
// Theorem 2.2 on Figure 1: once waiting is allowed, the language is no
// longer {aⁿbⁿ} — e.g. "b" becomes acceptable by waiting at v0 until t=p
// — and the wait language contains words of unbalanced shape.
func TestWaitingCollapsesLanguage(t *testing.T) {
	const maxLen = 6
	dWait := mustDecider(t, DefaultParams(), journey.Wait(), maxLen)
	if !dWait.Accepts("b") {
		t.Error("wait semantics should accept \"b\" (wait at v0 until t=p, then e3)")
	}
	if !dWait.Accepts("ab") {
		t.Error("wait language contains the no-wait language")
	}
	// a^n b^n still accepted (inclusion), plus strictly more words.
	dNo := mustDecider(t, DefaultParams(), journey.NoWait(), maxLen)
	nowaitWords := dNo.AcceptedWords(maxLen)
	waitWords := dWait.AcceptedWords(maxLen)
	if len(waitWords) <= len(nowaitWords) {
		t.Errorf("wait language (%d words) should strictly contain nowait language (%d words)",
			len(waitWords), len(nowaitWords))
	}
	waitSet := make(map[string]bool, len(waitWords))
	for _, w := range waitWords {
		waitSet[w] = true
	}
	for _, w := range nowaitWords {
		if !waitSet[w] {
			t.Errorf("inclusion violated: %q in L_nowait but not L_wait", w)
		}
	}
}

func TestBoundedWaitStillRestricted(t *testing.T) {
	// With a small bound d, waiting cannot bridge the gap from t=1 to
	// t=p^2 q - ... : check that wait[1] changes little for short words:
	// "b" requires waiting p-1 ticks at v0 (p=2: 1 tick), so wait[1]
	// accepts it, but wait[0] ≡ nowait does not.
	d0 := mustDecider(t, DefaultParams(), journey.BoundedWait(0), 6)
	d1 := mustDecider(t, DefaultParams(), journey.BoundedWait(1), 6)
	if d0.Accepts("b") {
		t.Error("wait[0] should behave like nowait and reject b")
	}
	if !d1.Accepts("b") {
		t.Error("wait[1] should accept b for p=2 (pause exactly 1 at v0)")
	}
	// wait[0] equals nowait on all short words.
	dNo := mustDecider(t, DefaultParams(), journey.NoWait(), 6)
	eq, w := lang.EqualUpTo(d0.Language("wait0"), dNo.Language("nowait"), 6)
	if !eq {
		t.Errorf("wait[0] and nowait differ at %q", w)
	}
}

func TestHorizonForLength(t *testing.T) {
	h, err := HorizonForLength(DefaultParams(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if h != 81+2 { // max(2,3)^4 + 2
		t.Errorf("HorizonForLength(4) = %d, want 83", h)
	}
	if _, err := HorizonForLength(DefaultParams(), 1000); err == nil {
		t.Error("huge maxLen should overflow")
	}
}

func TestAcceptingTimes(t *testing.T) {
	times, err := AcceptingTimes(DefaultParams(), 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []tvg.Time{2, 12, 72, 432}
	if len(times) != len(want) {
		t.Fatalf("AcceptingTimes = %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("AcceptingTimes[%d] = %d, want %d", i, times[i], want[i])
		}
	}
	if _, err := AcceptingTimes(Params{P: 4, Q: 3}, 3); err == nil {
		t.Error("invalid params should fail")
	}
	if _, err := AcceptingTimes(DefaultParams(), 100); err == nil {
		t.Error("overflow should fail")
	}
}

func TestTable1Rendering(t *testing.T) {
	s := Table1(DefaultParams())
	for _, want := range []string{"e0", "e1", "e2", "e3", "e4", "p=2, q=3", "always true", "t > 2", "any (1)"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table1 output missing %q:\n%s", want, s)
		}
	}
}

// TestEncodingMatchesAcceptingTimes cross-checks that the decider's
// accepting edge really fires at the predicted times pⁿq^(n-1).
func TestEncodingMatchesAcceptingTimes(t *testing.T) {
	params := DefaultParams()
	d := mustDecider(t, params, journey.NoWait(), 10)
	times, err := AcceptingTimes(params, 5)
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= 5; n++ {
		w := strings.Repeat("a", n) + strings.Repeat("b", n)
		j, ok := d.Witness(w)
		if !ok {
			t.Fatalf("no witness for n=%d", n)
		}
		last := j.Hops[j.Len()-1]
		if last.Depart != times[n-1] {
			t.Errorf("n=%d: accepting hop departs at %d, predicted %d", n, last.Depart, times[n-1])
		}
	}
}
