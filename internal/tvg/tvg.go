// Package tvg implements the time-varying graph (TVG) model of
// Casteigts, Flocchini, Quattrociocchi and Santoro ("Time-varying graphs
// and dynamic networks", ADHOC-NOW 2011), which the paper "Waiting in
// Dynamic Networks" (PODC 2012) builds on.
//
// A TVG is a quintuple G = (V, E, T, ρ, ζ) where V is a finite set of
// nodes, E ⊆ V×V×Σ a finite set of edges labeled over an alphabet Σ,
// ρ : E×T → {0,1} the presence function and ζ : E×T → T the latency
// function. This package uses discrete time (T = ℕ, represented as int64)
// and requires latencies to be at least 1, which guarantees that every
// journey makes progress; see DESIGN.md §4 for the rationale.
//
// The package provides the graph representation, a library of presence and
// latency schedules (always, never, finite sets, intervals, periodic,
// function-backed), per-time snapshots, the footprint graph, and compiled
// schedules: the per-edge list of (departure, arrival) pairs over a finite
// horizon that all decision procedures in this repository operate on.
package tvg

import (
	"errors"
	"fmt"
	"sort"
)

// Time is a discrete instant or duration, measured in ticks from 0.
type Time = int64

// Symbol is an edge label drawn from the TVG's alphabet Σ.
type Symbol = rune

// Node identifies a vertex of a Graph. Valid nodes are 0..NumNodes()-1.
type Node int

// EdgeID identifies an edge of a Graph. Valid ids are 0..NumEdges()-1.
type EdgeID int

// Presence is the presence function ρ restricted to a single edge:
// Present(t) reports whether the edge is available at time t.
type Presence interface {
	Present(t Time) bool
}

// Latency is the latency function ζ restricted to a single edge:
// Crossing(t) is the time it takes to cross the edge when starting the
// traversal at time t. Implementations must return values >= 1 for every
// time at which the edge is present.
type Latency interface {
	Crossing(t Time) Time
}

// Periodicity is an optional interface implemented by schedules that repeat
// with a fixed period. Graph.Period uses it to decide whether a phase
// (mod-period) analysis is exact for the graph.
type Periodicity interface {
	Period() (Time, bool)
}

// Edge is a labeled, directed, time-varying edge.
type Edge struct {
	// From and To are the endpoints. Self-loops (From == To) are allowed
	// and are essential to the paper's constructions.
	From, To Node
	// Label is the symbol this edge contributes to a journey's word.
	Label Symbol
	// Presence is the edge's availability schedule (ρ restricted to it).
	Presence Presence
	// Latency is the edge's crossing time schedule (ζ restricted to it).
	Latency Latency
	// Name is an optional human-readable identifier used in rendering and
	// error messages (e.g. "e0" in the paper's Table 1).
	Name string
}

// Graph is a time-varying graph over discrete time.
//
// The zero value is an empty graph ready for use. Graphs are not safe for
// concurrent mutation; all read-only methods are safe to call concurrently
// once construction is complete (provided the presence and latency
// implementations are).
type Graph struct {
	nodeNames []string
	nodeIndex map[string]Node
	edges     []Edge
	out       [][]EdgeID // per node: outgoing edge ids, maintained by AddEdge
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{nodeIndex: make(map[string]Node)}
}

// AddNode adds a node with the given name and returns its id. Adding a name
// that already exists returns the existing node.
func (g *Graph) AddNode(name string) Node {
	if g.nodeIndex == nil {
		g.nodeIndex = make(map[string]Node)
	}
	if n, ok := g.nodeIndex[name]; ok {
		return n
	}
	n := Node(len(g.nodeNames))
	g.nodeNames = append(g.nodeNames, name)
	g.nodeIndex[name] = n
	g.out = append(g.out, nil)
	return n
}

// AddNodes adds count anonymous nodes named "v0", "v1", ... starting from
// the current size, and returns the id of the first one. Names already
// taken by user-added nodes are skipped, so every call adds exactly count
// fresh nodes.
func (g *Graph) AddNodes(count int) Node {
	first := Node(len(g.nodeNames))
	for i := 0; i < count; i++ {
		k := len(g.nodeNames)
		name := fmt.Sprintf("v%d", k)
		for _, taken := g.nodeIndex[name]; taken; _, taken = g.nodeIndex[name] {
			k++
			name = fmt.Sprintf("v%d", k)
		}
		g.AddNode(name)
	}
	return first
}

// AddEdge appends an edge and returns its id. The endpoints must already
// exist and the schedules must be non-nil.
func (g *Graph) AddEdge(e Edge) (EdgeID, error) {
	if !g.ValidNode(e.From) || !g.ValidNode(e.To) {
		return 0, fmt.Errorf("tvg: edge %q references unknown node (from=%d, to=%d, have %d nodes)",
			e.Name, e.From, e.To, len(g.nodeNames))
	}
	if e.Presence == nil {
		return 0, fmt.Errorf("tvg: edge %q has nil presence", e.Name)
	}
	if e.Latency == nil {
		return 0, fmt.Errorf("tvg: edge %q has nil latency", e.Name)
	}
	// The default name "e<id>" is materialised lazily by Edge/Edges and
	// the error paths (edgeName): eagerly formatting one string per edge
	// dominated the allocation profile of generated graphs.
	g.edges = append(g.edges, e)
	id := EdgeID(len(g.edges) - 1)
	g.out[e.From] = append(g.out[e.From], id)
	return id, nil
}

// MustAddEdge is AddEdge but panics on error. It is intended for
// statically-known constructions (package-internal builders and tests).
func (g *Graph) MustAddEdge(e Edge) EdgeID {
	id, err := g.AddEdge(e)
	if err != nil {
		panic(err)
	}
	return id
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodeNames) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// ValidNode reports whether n is a node of g.
func (g *Graph) ValidNode(n Node) bool { return n >= 0 && int(n) < len(g.nodeNames) }

// NodeName returns the name of node n, or "" if n is not a valid node.
func (g *Graph) NodeName(n Node) string {
	if !g.ValidNode(n) {
		return ""
	}
	return g.nodeNames[n]
}

// NodeByName returns the node with the given name.
func (g *Graph) NodeByName(name string) (Node, bool) {
	n, ok := g.nodeIndex[name]
	return n, ok
}

// edgeName returns edge i's display name, materialising the "e<id>"
// default for edges added without one.
func (g *Graph) edgeName(i int) string {
	if n := g.edges[i].Name; n != "" {
		return n
	}
	return fmt.Sprintf("e%d", i)
}

// Edge returns a copy of the edge with the given id. An edge added
// without a name carries its default name "e<id>" in the copy.
func (g *Graph) Edge(id EdgeID) (Edge, bool) {
	if id < 0 || int(id) >= len(g.edges) {
		return Edge{}, false
	}
	e := g.edges[id]
	e.Name = g.edgeName(int(id))
	return e, true
}

// Edges returns a copy of the edge list, default names materialised.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	for i := range out {
		out[i].Name = g.edgeName(i)
	}
	return out
}

// OutEdges returns the ids of edges leaving node n. The adjacency is
// maintained incrementally by AddEdge, so this is O(out-degree), not a
// scan of the edge list; the result is a fresh copy the caller may keep.
func (g *Graph) OutEdges(n Node) []EdgeID {
	if !g.ValidNode(n) || len(g.out[n]) == 0 {
		return nil
	}
	return append([]EdgeID(nil), g.out[n]...)
}

// Alphabet returns the sorted set of symbols appearing on edges.
func (g *Graph) Alphabet() []Symbol {
	seen := make(map[Symbol]bool)
	for _, e := range g.edges {
		seen[e.Label] = true
	}
	out := make([]Symbol, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Present reports whether edge id is present at time t.
func (g *Graph) Present(id EdgeID, t Time) bool {
	if id < 0 || int(id) >= len(g.edges) {
		return false
	}
	return g.edges[id].Presence.Present(t)
}

// Crossing returns the latency of edge id at time t, or 0 if id is not an
// edge of g (like Present, invalid ids are answered safely — 0 is never a
// valid latency, so it is unambiguous).
func (g *Graph) Crossing(id EdgeID, t Time) Time {
	if id < 0 || int(id) >= len(g.edges) {
		return 0
	}
	return g.edges[id].Latency.Crossing(t)
}

// Arrival returns the arrival time of a traversal of edge id departing at
// time t, i.e. t + ζ(e, t). It does not check presence. For an invalid id
// it returns t (a zero crossing).
func (g *Graph) Arrival(id EdgeID, t Time) Time {
	return t + g.Crossing(id, t)
}

// errNotPeriodic is a sentinel used internally by Period.
var errNotPeriodic = errors.New("tvg: graph has a non-periodic schedule")

// Period returns the least common period of all edge schedules, if every
// presence and latency schedule declares one via the Periodicity interface.
// A graph with no edges has period 1.
func (g *Graph) Period() (Time, bool) {
	period := Time(1)
	for _, e := range g.edges {
		for _, s := range []any{e.Presence, e.Latency} {
			p, ok := schedulePeriod(s)
			if !ok {
				return 0, false
			}
			l, err := lcm(period, p)
			if err != nil {
				return 0, false
			}
			period = l
		}
	}
	return period, true
}

func schedulePeriod(s any) (Time, bool) {
	pr, ok := s.(Periodicity)
	if !ok {
		return 0, false
	}
	return pr.Period()
}

func lcm(a, b Time) (Time, error) {
	if a <= 0 || b <= 0 {
		return 0, errNotPeriodic
	}
	g := a
	x := b
	for x != 0 {
		g, x = x, g%x
	}
	l := (a / g) * b
	if l <= 0 {
		return 0, errNotPeriodic
	}
	return l, nil
}

// Validate checks structural well-formedness: every edge references valid
// nodes and has non-nil schedules, and — on the sampled time range
// [0, sampleHorizon] — every present time has latency >= 1. A zero or
// negative sampleHorizon skips the latency sampling.
func (g *Graph) Validate(sampleHorizon Time) error {
	for i, e := range g.edges {
		if !g.ValidNode(e.From) || !g.ValidNode(e.To) {
			return fmt.Errorf("tvg: edge %d (%q) references unknown node", i, g.edgeName(i))
		}
		if e.Presence == nil || e.Latency == nil {
			return fmt.Errorf("tvg: edge %d (%q) has nil schedule", i, g.edgeName(i))
		}
		for t := Time(0); t <= sampleHorizon; t++ {
			if e.Presence.Present(t) {
				if l := e.Latency.Crossing(t); l < 1 {
					return fmt.Errorf("tvg: edge %d (%q) has latency %d < 1 at time %d", i, g.edgeName(i), l, t)
				}
			}
		}
	}
	return nil
}
