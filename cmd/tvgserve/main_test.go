package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tvgwait/internal/engine"
)

func testServer(t *testing.T, timeout time.Duration, inflight int) (*server, *httptest.Server) {
	t.Helper()
	srv := newServer(timeout, inflight)
	srv.attachEngine(engine.New(engine.Options{}))
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	return srv, ts
}

const simBody = `{
	"graph": {"model": "markov", "nodes": 12, "birth": 0.05, "death": 0.5, "horizon": 50},
	"modes": ["nowait", "wait:2", "wait"],
	"messages": 10,
	"seed": 7
}`

func TestHealthz(t *testing.T) {
	_, ts := testServer(t, time.Minute, 2)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status = %d, want 200", resp.StatusCode)
	}
}

func TestSimulate(t *testing.T) {
	_, ts := testServer(t, time.Minute, 2)
	resp, err := http.Post(ts.URL+"/simulate", "application/json", strings.NewReader(simBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate status = %d, want 200", resp.StatusCode)
	}
	var got struct {
		engine.Report
		ElapsedMS *int64 `json:"elapsedMs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.Unicast) != 3 || got.ElapsedMS == nil {
		t.Errorf("report shape wrong: %+v", got)
	}
	for _, mr := range got.Unicast {
		if mr.Messages != 10 {
			t.Errorf("mode %s simulated %d messages, want 10", mr.Mode, mr.Messages)
		}
	}
	// Waiting can only help: the wait row must deliver at least as much
	// as the nowait row.
	if got.Unicast[2].DeliveryRatio < got.Unicast[0].DeliveryRatio {
		t.Errorf("wait delivery %.3f below nowait %.3f",
			got.Unicast[2].DeliveryRatio, got.Unicast[0].DeliveryRatio)
	}
}

func TestSimulateBroadcast(t *testing.T) {
	_, ts := testServer(t, time.Minute, 2)
	body := `{
		"graph": {"model": "markov", "nodes": 10, "birth": 0.05, "death": 0.5, "horizon": 40},
		"modes": ["nowait", "wait"], "broadcast": 0, "replicates": 2, "seed": 3
	}`
	resp, err := http.Post(ts.URL+"/simulate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got engine.Report
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(got.Broadcast) != 2 || len(got.Unicast) != 0 {
		t.Errorf("broadcast response wrong (status %d): %+v", resp.StatusCode, got)
	}
}

func TestJourneyEndpoint(t *testing.T) {
	_, ts := testServer(t, time.Minute, 2)
	body := `{
		"graph": {"model": "markov", "nodes": 12, "birth": 0.05, "death": 0.4, "horizon": 80},
		"seed": 7, "mode": "wait", "kind": "foremost", "src": 0, "dst": 5
	}`
	resp, err := http.Post(ts.URL+"/journey", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got engine.JourneyReport
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !got.Found || got.Hops < 1 {
		t.Errorf("journey response wrong (status %d): %+v", resp.StatusCode, got)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := testServer(t, time.Minute, 2)
	body := `{
		"graph": {"model": "markov", "nodes": 12, "birth": 0.05, "death": 0.5, "horizon": 50},
		"modes": ["nowait", "wait"], "seed": 7
	}`
	resp, err := http.Post(ts.URL+"/metrics", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d, want 200", resp.StatusCode)
	}
	var got engine.MetricsReport
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Nodes != 12 || len(got.Modes) != 2 {
		t.Fatalf("metrics report shape wrong: %+v", got)
	}
	if got.Modes[0].Mode != "nowait" || got.Modes[1].Mode != "wait" {
		t.Fatalf("mode rows wrong: %+v", got.Modes)
	}
	// Waiting can only enlarge the reachable relation.
	if got.Modes[1].ReachablePairs < got.Modes[0].ReachablePairs {
		t.Errorf("wait reaches %d pairs, fewer than nowait's %d",
			got.Modes[1].ReachablePairs, got.Modes[0].ReachablePairs)
	}
	if got.Modes[1].Connected && got.Modes[1].Diameter < 0 {
		t.Errorf("connected wait row has diameter %d", got.Modes[1].Diameter)
	}
}

func TestClientErrors(t *testing.T) {
	_, ts := testServer(t, time.Minute, 2)
	cases := []struct {
		path, body string
		want       int
	}{
		{"/simulate", `not json`, http.StatusBadRequest},
		{"/simulate", `{"graph": {"model": "bogus", "nodes": 8, "horizon": 10}}`, http.StatusBadRequest},
		{"/simulate", `{"graph": {"model": "markov", "nodes": 8, "horizon": 10}, "bogusField": 1}`, http.StatusBadRequest},
		{"/journey", `{"graph": {"model": "markov", "nodes": 8, "horizon": 10}, "mode": "wait", "src": 0, "dst": 99}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+c.path, "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("POST %s %q: status = %d, want %d", c.path, c.body, resp.StatusCode, c.want)
		}
	}
	// Wrong method.
	resp, err := http.Get(ts.URL + "/simulate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /simulate status = %d, want 405", resp.StatusCode)
	}
}

// TestInflightLimit saturates the admission semaphore and checks that the
// next request is rejected rather than queued.
func TestInflightLimit(t *testing.T) {
	srv, ts := testServer(t, time.Minute, 1)
	srv.sem <- struct{}{} // occupy the only slot
	defer func() { <-srv.sem }()
	resp, err := http.Post(ts.URL+"/simulate", "application/json", strings.NewReader(simBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("saturated simulate status = %d, want 429", resp.StatusCode)
	}
	// Health stays green while simulations are saturated.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("healthz under load = %d, want 200", hresp.StatusCode)
	}
}

// TestRequestTimeout gives a heavyweight spec a tiny deadline and expects
// a gateway-timeout response.
func TestRequestTimeout(t *testing.T) {
	_, ts := testServer(t, time.Millisecond, 2)
	body := `{
		"graph": {"model": "markov", "nodes": 64, "birth": 0.05, "death": 0.5, "horizon": 400},
		"modes": ["wait"], "messages": 500, "replicates": 4, "seed": 1
	}`
	resp, err := http.Post(ts.URL+"/simulate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("timeout status = %d, want 504", resp.StatusCode)
	}
}

// TestPprofMux smoke-tests the -pprof listener's handler tree: the
// index and the symbol endpoint must answer 200 on a separate mux that
// shares nothing with the service routes.
func TestPprofMux(t *testing.T) {
	ts := httptest.NewServer(pprofMux(nil))
	defer ts.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/symbol", "/debug/pprof/cmdline"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}
	// The service mux must NOT expose the profiler.
	srv := newServer(time.Second, 1)
	srv.attachEngine(engine.New(engine.Options{}))
	app := httptest.NewServer(srv.routes())
	defer app.Close()
	resp, err := http.Get(app.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("service routes must not serve /debug/pprof/")
	}
}

// discardResponseWriter is a zero-cost http.ResponseWriter for handler
// benchmarks: one reused header map, counted writes, no buffering.
type discardResponseWriter struct {
	h http.Header
	n int64
}

func (d *discardResponseWriter) Header() http.Header {
	if d.h == nil {
		d.h = make(http.Header)
	}
	return d.h
}
func (d *discardResponseWriter) Write(p []byte) (int, error) {
	d.n += int64(len(p))
	return len(p), nil
}
func (d *discardResponseWriter) WriteHeader(int) {}

// BenchmarkHandleMetrics measures the full /metrics handler hot path on
// a warm engine cache — decode → admission → cached rows → writeJSON —
// through the telemetry envelope (instrument), so the ledger prices the
// per-request observability overhead alongside the pooled response
// buffers.
func BenchmarkHandleMetrics(b *testing.B) {
	srv := newServer(time.Minute, 4)
	srv.attachEngine(engine.New(engine.Options{}))
	h := srv.instrument("/metrics", srv.handleMetrics)
	body := `{
		"graph": {"model": "markov", "nodes": 32, "birth": 0.05, "death": 0.5, "horizon": 60},
		"modes": ["nowait", "wait:2", "wait:8", "wait"], "seed": 7
	}`
	h(&discardResponseWriter{}, httptest.NewRequest("POST", "/metrics", strings.NewReader(body))) // warm the engine caches
	req := httptest.NewRequest("POST", "/metrics", strings.NewReader(body))
	rd := strings.NewReader(body)
	req.Body = io.NopCloser(rd)
	w := &discardResponseWriter{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rd.Reset(body)
		h(w, req)
	}
}

// TestSpectrumEndpoint drives the wait-spectrum route end to end and
// checks the ladder shape: normalized rungs, monotone reachable pairs,
// a critical budget consistent with the rows.
func TestSpectrumEndpoint(t *testing.T) {
	_, ts := testServer(t, time.Minute, 2)
	body := `{
		"graph": {"model": "markov", "nodes": 12, "birth": 0.05, "death": 0.5, "horizon": 50},
		"modes": ["wait", "nowait", "wait:2", "wait:0"], "seed": 7
	}`
	resp, err := http.Post(ts.URL+"/spectrum", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("spectrum status = %d, want 200", resp.StatusCode)
	}
	if cl := resp.Header.Get("Content-Length"); cl == "" {
		t.Error("spectrum response missing Content-Length (pooled writeJSON sets it)")
	}
	var got engine.SpectrumReport
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Nodes != 12 || len(got.Rungs) != 3 {
		t.Fatalf("spectrum report shape wrong: %+v", got)
	}
	want := []string{"nowait", "wait[2]", "wait"}
	for i, rung := range got.Rungs {
		if rung.Mode != want[i] {
			t.Fatalf("rung %d = %q, want %q (normalized ladder)", i, rung.Mode, want[i])
		}
		if i > 0 && rung.ReachablePairs < got.Rungs[i-1].ReachablePairs {
			t.Errorf("rung %s reaches fewer pairs than %s", rung.Mode, got.Rungs[i-1].Mode)
		}
	}
	for _, rung := range got.Rungs {
		if rung.Connected {
			if got.FirstConnected != rung.Mode {
				t.Errorf("firstConnected = %q, want %q", got.FirstConnected, rung.Mode)
			}
			break
		}
	}
	// The spectrum endpoint rejects bad ladders like the others.
	resp2, err := http.Post(ts.URL+"/spectrum", "application/json",
		strings.NewReader(`{"graph": {"model": "markov", "nodes": 8, "horizon": 10}, "modes": ["bogus"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("bad ladder status = %d, want 400", resp2.StatusCode)
	}
}
