package automata

import "testing"

// FuzzRegexCompile checks that the regex compiler never panics and that a
// successfully compiled pattern yields an automaton whose membership
// queries are well-behaved. Run with `go test -fuzz FuzzRegexCompile` for
// exploration; the seed corpus runs on every ordinary `go test`.
func FuzzRegexCompile(f *testing.F) {
	for _, seed := range []string{
		"", "a", "(a|b)*abb", "a**", "((((", "a|", "\\\\", "\\*",
		"(ab|ba)+c?", "a+b+c+", "()", "(|)", "x(y(z)*)?",
	} {
		f.Add(seed, "abab")
	}
	f.Fuzz(func(t *testing.T, pattern, word string) {
		nfa, err := CompileRegex(pattern)
		if err != nil {
			return // invalid patterns simply error
		}
		// Membership must not panic, and determinization must agree.
		got := nfa.Accepts(word)
		d := nfa.Determinize(SortedRunes(pattern + word))
		if d.Accepts(word) != got {
			t.Fatalf("pattern %q: NFA=%v, DFA=%v on %q", pattern, got, d.Accepts(word), word)
		}
		m := d.Minimize()
		if m.Accepts(word) != got {
			t.Fatalf("pattern %q: minimized DFA disagrees on %q", pattern, word)
		}
	})
}

// FuzzMinimizeAgreement drives random DFAs from raw bytes and checks the
// quotient construction on the given word.
func FuzzMinimizeAgreement(f *testing.F) {
	f.Add([]byte{1, 0, 1, 1, 0, 1, 2, 0}, "abba")
	f.Add([]byte{3, 3, 2, 1, 0}, "bb")
	f.Fuzz(func(t *testing.T, raw []byte, word string) {
		if len(raw) < 4 {
			return
		}
		n := 1 + int(raw[0])%6
		trans := make([][]State, n)
		accept := make([]bool, n)
		idx := 1
		next := func() byte {
			b := raw[idx%len(raw)]
			idx++
			return b
		}
		for s := 0; s < n; s++ {
			trans[s] = []State{State(int(next()) % n), State(int(next()) % n)}
			accept[s] = next()%2 == 0
		}
		d, err := NewDFA([]rune{'a', 'b'}, trans, State(int(next())%n), accept)
		if err != nil {
			t.Fatal(err)
		}
		m := d.Minimize()
		if d.Accepts(word) != m.Accepts(word) {
			t.Fatalf("minimize changed membership of %q", word)
		}
	})
}
