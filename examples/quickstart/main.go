// Quickstart: build a small time-varying graph, ask which words it
// accepts under each waiting semantics, and inspect a witness journey.
//
// The graph is a two-hop "ferry" network: the first connection exists only
// at t=5 and the second only at t=2 and t=8 — so the two-hop trip is
// possible only for an entity that can wait at the middle node.
package main

import (
	"fmt"
	"log"

	"tvgwait"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	g := tvgwait.NewGraph()
	port := g.AddNode("port")
	island := g.AddNode("island")
	mainland := g.AddNode("mainland")

	// ferry a: port -> island, sails only at t=5, crossing takes 1 tick.
	if _, err := g.AddEdge(tvgwait.Edge{
		From: port, To: island, Label: 'a',
		Presence: tvgwait.At(5), Latency: tvgwait.ConstLatency(1),
	}); err != nil {
		return err
	}
	// ferry b: island -> mainland, sails at t=2 and t=8.
	if _, err := g.AddEdge(tvgwait.Edge{
		From: island, To: mainland, Label: 'b',
		Presence: tvgwait.At(2, 8), Latency: tvgwait.ConstLatency(1),
	}); err != nil {
		return err
	}

	a := tvgwait.NewAutomaton(g)
	a.AddInitial(port)
	a.AddAccepting(mainland)

	const horizon = 12
	fmt.Println("word \"ab\" (port → island → mainland) under each waiting semantics:")
	for _, mode := range []tvgwait.Mode{
		tvgwait.NoWait(), tvgwait.BoundedWait(1), tvgwait.BoundedWait(5), tvgwait.Wait(),
	} {
		dec, err := tvgwait.NewDecider(a, mode, horizon)
		if err != nil {
			return err
		}
		accepted := dec.Accepts("ab")
		fmt.Printf("  %-8s accepted=%v", mode, accepted)
		if accepted {
			if j, ok := dec.Witness("ab"); ok {
				fmt.Printf("  witness=%s", j)
			}
		}
		fmt.Println()
	}

	// Journey metrics over the same schedule.
	c, err := tvgwait.Compile(g, horizon)
	if err != nil {
		return err
	}
	if j, arr, ok := tvgwait.Foremost(c, tvgwait.Wait(), port, mainland, 0); ok {
		fmt.Printf("\nforemost journey with buffering: %s, arrives at t=%d\n", j, arr)
	}
	if _, _, ok := tvgwait.Foremost(c, tvgwait.NoWait(), port, mainland, 0); !ok {
		fmt.Println("without buffering the mainland is unreachable from t=0 — the power of waiting")
	}
	return nil
}
