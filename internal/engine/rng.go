package engine

// Deterministic stream derivation. Each replicate draws its graph and its
// message workload from seeds derived with a SplitMix64 finalizer, so the
// streams are statistically independent while remaining reproducible from
// the single spec seed. Replicate 0 uses the base seed unchanged: a
// single-replicate engine run therefore regenerates exactly the graph and
// workload that dtn.Sweep produced for the same seed, which keeps
// historical experiment tables stable.

const (
	streamGraph    = 0x67726170 // "grap"
	streamWorkload = 0x776b6c64 // "wkld"
)

// splitmix64 is the finalizer of the SplitMix64 generator (Steele,
// Lea & Flood 2014) — a cheap, well-mixed bijection on 64-bit words.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// streamSeed derives the seed of the (stream, index) RNG stream rooted at
// base. Distinct (stream, index) pairs map to distinct mix inputs.
func streamSeed(base int64, stream uint64, index int) int64 {
	return int64(splitmix64(uint64(base) ^ splitmix64(stream<<20^uint64(index))))
}

// graphSeed is the generator seed of replicate rep.
func graphSeed(base int64, rep int) int64 {
	if rep == 0 {
		return base
	}
	return streamSeed(base, streamGraph, rep)
}

// workloadSeed is the message-workload seed of replicate rep.
func workloadSeed(base int64, rep int) int64 {
	if rep == 0 {
		return base
	}
	return streamSeed(base, streamWorkload, rep)
}
