package obs

import (
	"io"
	"sync/atomic"
	"testing"
)

// The obs microbenches are the BENCH_obs.json ledger's floor: what one
// telemetry operation costs on the hot path. The counters must price in
// single-digit nanoseconds (an uncontended atomic add) for the sweep
// and handler instrumentation to be measurably free.

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	if c.Value() != int64(b.N) {
		b.Fatal("lost updates")
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkGaugeSet(b *testing.B) {
	var g Gauge
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(int64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(LatencyBuckets()...)
	b.ReportAllocs()
	// Rotate through magnitudes so the scan depth varies like real
	// latencies rather than always hitting the first bucket.
	vals := [4]int64{900, 45_000, 2_300_000, 800_000_000}
	for i := 0; i < b.N; i++ {
		h.Observe(vals[i&3])
	}
}

func BenchmarkSweepStatsBlockMerge(b *testing.B) {
	// One per-block merge: the granularity at which the sweeps update a
	// SweepStats (local int64s folded in at block end).
	var st SweepStats
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st.Blocks.Inc()
		st.Contacts.Add(100_000)
		st.DueExpiries.Add(512)
		st.EarlyExits.Inc()
	}
}

// BenchmarkWriteProm prices a full scrape of a realistic registry
// (render side; allocations here are fine and expected).
func BenchmarkWriteProm(b *testing.B) {
	r := NewRegistry()
	for _, cache := range []string{"schedule", "metrics", "spectra"} {
		c := r.Counter("tvg_engine_cache_hits_total", `cache="`+cache+`"`, "h")
		c.Add(12345)
		r.Counter("tvg_engine_cache_misses_total", `cache="`+cache+`"`, "m")
	}
	for _, ep := range []string{"/simulate", "/journey", "/metrics", "/spectrum"} {
		h := r.Histogram("tvg_http_latency_ns", `endpoint="`+ep+`"`, "l", LatencyBuckets())
		for i := int64(1); i < 1000; i++ {
			h.Observe(i * 10_000)
		}
	}
	var st SweepStats
	st.Register(r, "tvg_sweep")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := r.WriteProm(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselineAtomicAdd anchors the counter numbers against a raw
// atomic — the overhead of the Counter wrapper must be zero.
func BenchmarkBaselineAtomicAdd(b *testing.B) {
	var v atomic.Int64
	for i := 0; i < b.N; i++ {
		v.Add(1)
	}
}
