package tvg

import (
	"math/rand"
	"reflect"
	"testing"
)

// rawEqualCSR asserts that got's CSR arrays are byte-identical to
// want's — the round-trip guarantee the durability layer rests on.
func rawEqualCSR(t *testing.T, want, got *ContactSet) {
	t.Helper()
	if !reflect.DeepEqual(want.contacts, got.contacts) {
		t.Fatalf("contacts differ after round trip")
	}
	if !reflect.DeepEqual(want.edgeOff, got.edgeOff) {
		t.Fatalf("edgeOff differs after round trip")
	}
	if !reflect.DeepEqual(want.byTime, got.byTime) {
		t.Fatalf("byTime differs after round trip")
	}
	if !reflect.DeepEqual(want.timeOff, got.timeOff) {
		t.Fatalf("timeOff differs after round trip")
	}
	if !reflect.DeepEqual(want.outEdges, got.outEdges) || !reflect.DeepEqual(want.outOff, got.outOff) {
		t.Fatalf("node CSR differs after round trip")
	}
	if want.rev != got.rev || want.lastDep != got.lastDep || want.horizon != got.horizon {
		t.Fatalf("stamps differ: rev %d/%d lastDep %d/%d horizon %d/%d",
			want.rev, got.rev, want.lastDep, got.lastDep, want.horizon, got.horizon)
	}
}

// buildRevisions returns a chain of revisions: a cold builder set plus
// several appended batches, exercising both empty and populated ticks.
func buildRevisions(t *testing.T) []*ContactSet {
	t.Helper()
	b := NewBuilder()
	b.Reset(6, 50)
	b.StartEdge(0, 1, 'a')
	b.Append(0, 2)
	b.Append(3, 5)
	b.StartEdge(1, 2, 'b')
	b.Append(3, 4)
	b.StartEdge(5, 5, 'c') // self-loop, zero contacts on edge 3 below
	b.Append(4, 6)
	b.StartEdge(2, 0, 'd')
	base, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	revs := []*ContactSet{base}
	cur := base
	batches := [][]ContactRecord{
		{{From: 1, To: 3, Dep: 6, Arr: 7}, {From: 1, To: 3, Dep: 8, Arr: 12}},
		{{From: 3, To: 4, Dep: 9, Arr: 10}, {From: 4, To: 5, Dep: 11, Arr: 13}, {From: 0, To: 2, Dep: 11, Arr: 14}},
		{{From: 5, To: 0, Dep: 40, Arr: 55}}, // arrival past the horizon is legal
	}
	for _, recs := range batches {
		next, err := cur.AppendContacts(recs)
		if err != nil {
			t.Fatal(err)
		}
		revs = append(revs, next)
		cur = next
	}
	return revs
}

// TestRawRoundTripEveryRevision pins the acceptance bar: Raw → FromRaw
// reproduces a byte-identical CSR at every revision of an append chain,
// and the restored set keeps appending from the recovered watermark
// exactly like the original.
func TestRawRoundTripEveryRevision(t *testing.T) {
	for i, rev := range buildRevisions(t) {
		got, err := FromRaw(rev.Raw())
		if err != nil {
			t.Fatalf("revision %d: FromRaw: %v", i, err)
		}
		rawEqualCSR(t, rev, got)
		if got.Graph().NumNodes() != rev.Graph().NumNodes() || got.Graph().NumEdges() != rev.Graph().NumEdges() {
			t.Fatalf("revision %d: graph shape changed", i)
		}
		// Restored edges answer the same schedule queries within the horizon.
		for e := 0; e < rev.Graph().NumEdges(); e++ {
			for _, ct := range rev.EdgeContacts(EdgeID(e)) {
				if !got.Graph().Present(EdgeID(e), ct.Dep) || got.Graph().Arrival(EdgeID(e), ct.Dep) != ct.Arr {
					t.Fatalf("revision %d: edge %d schedule changed at %d", i, e, ct.Dep)
				}
			}
		}
		// The restored watermark accepts exactly what the original would.
		recs := []ContactRecord{{From: 0, To: 1, Dep: rev.LastDep() + 3, Arr: rev.LastDep() + 4}}
		if rev.LastDep()+3 > rev.Horizon() {
			continue
		}
		a, errA := rev.AppendContacts(recs)
		c, errC := got.AppendContacts(recs)
		if (errA == nil) != (errC == nil) {
			t.Fatalf("revision %d: append divergence: %v vs %v", i, errA, errC)
		}
		if errA == nil {
			rawEqualCSR(t, a, c)
		}
	}
}

// TestRawPreservesNodeNames pins the name section: caller-named graphs
// keep their names through a round trip, builder-made graphs restore
// their default names with a nil NodeNames.
func TestRawPreservesNodeNames(t *testing.T) {
	g := New()
	relay := g.AddNode("relay")
	base := g.AddNode("base")
	g.MustAddEdge(Edge{From: relay, To: base, Presence: Always{}, Latency: ConstLatency(1)})
	cs, err := NewContactSet(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	raw := cs.Raw()
	if raw.NodeNames == nil {
		t.Fatal("caller-named graph lost its node names")
	}
	got, err := FromRaw(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Graph().NodeName(relay) != "relay" || got.Graph().NodeName(base) != "base" {
		t.Fatalf("names lost: %q, %q", got.Graph().NodeName(relay), got.Graph().NodeName(base))
	}
	if n, ok := got.Graph().NodeByName("base"); !ok || n != base {
		t.Fatalf("NodeByName lost after restore")
	}

	b := NewBuilder()
	b.Reset(3, 5)
	b.StartEdge(0, 1, 0)
	b.Append(1, 2)
	bs, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if braw := bs.Raw(); braw.NodeNames != nil {
		t.Fatalf("default-named graph serialized %d names", len(braw.NodeNames))
	}
	got2, err := FromRaw(bs.Raw())
	if err != nil {
		t.Fatal(err)
	}
	if got2.Graph().NodeName(0) != "v0" || got2.Graph().NodeName(2) != "v2" {
		t.Fatalf("default names not restored: %q", got2.Graph().NodeName(0))
	}
}

// TestFromRawRejectsCorruption drives FromRaw with single-field
// mutations of a valid snapshot: every one must be rejected, never
// produce a set.
func TestFromRawRejectsCorruption(t *testing.T) {
	revs := buildRevisions(t)
	base := revs[len(revs)-1]
	mutations := []struct {
		name string
		mut  func(*RawSnapshot)
	}{
		{"negative nodes", func(r *RawSnapshot) { r.Nodes = -1 }},
		{"negative horizon", func(r *RawSnapshot) { r.Horizon = -2 }},
		{"short edgeOff", func(r *RawSnapshot) { r.EdgeOff = r.EdgeOff[:len(r.EdgeOff)-1] }},
		{"short byTime", func(r *RawSnapshot) { r.ByTime = r.ByTime[:len(r.ByTime)-1] }},
		{"short timeOff", func(r *RawSnapshot) { r.TimeOff = r.TimeOff[:len(r.TimeOff)-1] }},
		{"edge endpoint out of range", func(r *RawSnapshot) { r.Edges[0].To = Node(r.Nodes) }},
		{"contact edge mismatch", func(r *RawSnapshot) { r.Contacts[0].Edge++ }},
		{"contact endpoint mismatch", func(r *RawSnapshot) { r.Contacts[0].From++ }},
		{"departure past horizon", func(r *RawSnapshot) { r.Contacts[0].Dep = r.Horizon + 1; r.Contacts[0].Arr = r.Horizon + 2 }},
		{"zero latency", func(r *RawSnapshot) { r.Contacts[1].Arr = r.Contacts[1].Dep }},
		{"byTime out of range", func(r *RawSnapshot) { r.ByTime[0] = int32(len(r.Contacts)) }},
		{"byTime wrong tick", func(r *RawSnapshot) { r.ByTime[0], r.ByTime[len(r.ByTime)-1] = r.ByTime[len(r.ByTime)-1], r.ByTime[0] }},
		{"stale lastDep", func(r *RawSnapshot) { r.LastDep++ }},
		{"unbracketed edgeOff", func(r *RawSnapshot) { r.EdgeOff[len(r.EdgeOff)-1]++ }},
		{"unbracketed timeOff", func(r *RawSnapshot) { r.TimeOff[0] = 1 }},
		{"duplicate node name", func(r *RawSnapshot) {
			r.NodeNames = make([]string, r.Nodes)
			for i := range r.NodeNames {
				r.NodeNames[i] = "dup"
			}
		}},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			raw := base.Raw()
			// Deep-copy the slices so mutations never touch the live set.
			raw.Contacts = append([]Contact(nil), raw.Contacts...)
			raw.EdgeOff = append([]int32(nil), raw.EdgeOff...)
			raw.ByTime = append([]int32(nil), raw.ByTime...)
			raw.TimeOff = append([]int32(nil), raw.TimeOff...)
			raw.Edges = append([]RawEdge(nil), raw.Edges...)
			m.mut(&raw)
			if _, err := FromRaw(raw); err == nil {
				t.Fatalf("mutation %q accepted", m.name)
			}
		})
	}
}

// TestFromRawRandomized cross-checks restored sets against their
// originals on randomized builder schedules: accessor answers must
// agree everywhere.
func TestFromRawRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		nodes := 2 + rng.Intn(10)
		horizon := Time(5 + rng.Intn(40))
		b := NewBuilder()
		b.Reset(nodes, horizon)
		for e := 0; e < 1+rng.Intn(12); e++ {
			b.StartEdge(Node(rng.Intn(nodes)), Node(rng.Intn(nodes)), 'x')
			dep := Time(rng.Intn(5))
			for dep <= horizon {
				if rng.Intn(3) > 0 {
					b.Append(dep, dep+1+Time(rng.Intn(4)))
				}
				dep += 1 + Time(rng.Intn(6))
			}
		}
		cs, err := b.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		got, err := FromRaw(cs.Raw())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rawEqualCSR(t, cs, got)
		for tt := Time(0); tt <= horizon; tt++ {
			if !reflect.DeepEqual(cs.ContactsAt(tt), got.ContactsAt(tt)) {
				t.Fatalf("trial %d: ContactsAt(%d) differs", trial, tt)
			}
		}
	}
}
