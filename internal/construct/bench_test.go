package construct

import (
	"fmt"
	"testing"

	"tvgwait/internal/core"
	"tvgwait/internal/gen"
	"tvgwait/internal/journey"
	"tvgwait/internal/lang"
	"tvgwait/internal/tvg"
)

// Ablation: ConfigNFA extraction cost and size as the horizon grows — the
// price of the effective Theorem 2.2 witness.
func BenchmarkConfigNFAHorizonSweep(b *testing.B) {
	g, err := gen.RandomPeriodicGraph(gen.PeriodicParams{
		Nodes: 4, Edges: 7, MaxPeriod: 4, AlphabetSize: 2, MaxLatency: 2, Seed: 13,
	})
	if err != nil {
		b.Fatal(err)
	}
	a := core.NewAutomaton(g)
	a.AddInitial(0)
	a.AddAccepting(tvg.Node(g.NumNodes() - 1))
	for _, horizon := range []tvg.Time{10, 40, 160} {
		b.Run(fmt.Sprintf("h=%d", horizon), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				nfa, err := ConfigNFA(a, journey.Wait(), horizon)
				if err != nil {
					b.Fatal(err)
				}
				_ = nfa.NumStates()
			}
		})
	}
}

func BenchmarkFromDecider(b *testing.B) {
	l := lang.AnBn()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := FromDecider(l); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWordCode(b *testing.B) {
	code, err := NewWordCode([]rune{'a', 'b', 'c'})
	if err != nil {
		b.Fatal(err)
	}
	t, err := code.Encode("abcabcabc")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := code.Encode("abcabcabc"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := code.Decode(t); !ok {
				b.Fatal("must decode")
			}
		}
	})
}

func BenchmarkDilateCompile(b *testing.B) {
	g, err := gen.RandomPeriodicGraph(gen.PeriodicParams{
		Nodes: 4, Edges: 8, MaxPeriod: 4, AlphabetSize: 2, MaxLatency: 2, Seed: 21,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []tvg.Time{2, 5} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dg, err := Dilate(g, k)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := tvg.Compile(dg, 100); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
