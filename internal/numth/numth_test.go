package numth

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIsPrime(t *testing.T) {
	cases := []struct {
		n    int64
		want bool
	}{
		{-7, false}, {0, false}, {1, false}, {2, true}, {3, true}, {4, false},
		{5, true}, {9, false}, {25, false}, {29, true}, {97, true}, {91, false},
		{7919, true}, {7917, false}, {1000003, true}, {1000001, false},
	}
	for _, c := range cases {
		if got := IsPrime(c.n); got != c.want {
			t.Errorf("IsPrime(%d) = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestNextPrime(t *testing.T) {
	cases := []struct{ n, want int64 }{
		{0, 2}, {1, 2}, {2, 3}, {3, 5}, {13, 17}, {89, 97}, {7901, 7907},
	}
	for _, c := range cases {
		if got := NextPrime(c.n); got != c.want {
			t.Errorf("NextPrime(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestPrimesUpTo(t *testing.T) {
	got := PrimesUpTo(30)
	want := []int64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29}
	if len(got) != len(want) {
		t.Fatalf("PrimesUpTo(30) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PrimesUpTo(30)[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if PrimesUpTo(1) != nil {
		t.Errorf("PrimesUpTo(1) should be nil")
	}
}

func TestPrimesUpToAgreesWithIsPrime(t *testing.T) {
	primes := PrimesUpTo(2000)
	set := make(map[int64]bool, len(primes))
	for _, p := range primes {
		set[p] = true
	}
	for n := int64(0); n <= 2000; n++ {
		if set[n] != IsPrime(n) {
			t.Fatalf("sieve and trial division disagree at %d", n)
		}
	}
}

func TestCheckedMul(t *testing.T) {
	if got, err := CheckedMul(6, 7); err != nil || got != 42 {
		t.Errorf("CheckedMul(6,7) = %d, %v", got, err)
	}
	if _, err := CheckedMul(math.MaxInt64, 2); err != ErrOverflow {
		t.Errorf("CheckedMul overflow: err = %v, want ErrOverflow", err)
	}
	if got, err := CheckedMul(0, math.MaxInt64); err != nil || got != 0 {
		t.Errorf("CheckedMul(0,max) = %d, %v", got, err)
	}
	if _, err := CheckedMul(-1, 3); err == nil {
		t.Errorf("CheckedMul(-1,3) should fail")
	}
}

func TestCheckedAdd(t *testing.T) {
	if got, err := CheckedAdd(40, 2); err != nil || got != 42 {
		t.Errorf("CheckedAdd(40,2) = %d, %v", got, err)
	}
	if _, err := CheckedAdd(math.MaxInt64, 1); err != ErrOverflow {
		t.Errorf("CheckedAdd overflow: err = %v, want ErrOverflow", err)
	}
	if _, err := CheckedAdd(-1, 1); err == nil {
		t.Errorf("CheckedAdd(-1,1) should fail")
	}
}

func TestCheckedPow(t *testing.T) {
	cases := []struct {
		base int64
		exp  int
		want int64
	}{
		{2, 0, 1}, {2, 10, 1024}, {3, 4, 81}, {10, 18, 1000000000000000000},
		{0, 0, 1}, {0, 5, 0}, {1, 62, 1},
	}
	for _, c := range cases {
		got, err := CheckedPow(c.base, c.exp)
		if err != nil || got != c.want {
			t.Errorf("CheckedPow(%d,%d) = %d, %v; want %d", c.base, c.exp, got, err, c.want)
		}
	}
	if _, err := CheckedPow(2, 63); err != ErrOverflow {
		t.Errorf("CheckedPow(2,63): err = %v, want ErrOverflow", err)
	}
	if _, err := CheckedPow(-2, 2); err == nil {
		t.Errorf("CheckedPow(-2,2) should fail")
	}
}

func TestValuation(t *testing.T) {
	cases := []struct {
		n, p     int64
		wantK    int
		wantRest int64
	}{
		{12, 2, 2, 3}, {81, 3, 4, 1}, {7, 2, 0, 7}, {1, 5, 0, 1}, {200, 5, 2, 8},
	}
	for _, c := range cases {
		k, rest := Valuation(c.n, c.p)
		if k != c.wantK || rest != c.wantRest {
			t.Errorf("Valuation(%d,%d) = (%d,%d), want (%d,%d)", c.n, c.p, k, rest, c.wantK, c.wantRest)
		}
	}
}

func TestDecomposePQ(t *testing.T) {
	cases := []struct {
		t, p, q int64
		i, j    int
		ok      bool
	}{
		{1, 2, 3, 0, 0, true},
		{2, 2, 3, 1, 0, true},
		{12, 2, 3, 2, 1, true},
		{72, 2, 3, 3, 2, true},
		{10, 2, 3, 0, 0, false}, // factor 5
		{0, 2, 3, 0, 0, false},  // below 1
		{12, 2, 2, 0, 0, false}, // p == q
		{12, 4, 3, 0, 0, false}, // p not prime
		{375, 3, 5, 1, 3, true}, // 3 * 125
		{-6, 2, 3, 0, 0, false}, // negative
	}
	for _, c := range cases {
		i, j, ok := DecomposePQ(c.t, c.p, c.q)
		if ok != c.ok || (ok && (i != c.i || j != c.j)) {
			t.Errorf("DecomposePQ(%d,%d,%d) = (%d,%d,%v), want (%d,%d,%v)",
				c.t, c.p, c.q, i, j, ok, c.i, c.j, c.ok)
		}
	}
}

func TestDecomposePQRoundTrip(t *testing.T) {
	// Every p^i * q^j decomposes back to (i, j).
	for i := 0; i <= 12; i++ {
		for j := 0; j <= 12; j++ {
			pi, err := CheckedPow(2, i)
			if err != nil {
				t.Fatal(err)
			}
			qj, err := CheckedPow(3, j)
			if err != nil {
				t.Fatal(err)
			}
			n, err := CheckedMul(pi, qj)
			if err != nil {
				t.Fatal(err)
			}
			gi, gj, ok := DecomposePQ(n, 2, 3)
			if !ok || gi != i || gj != j {
				t.Fatalf("DecomposePQ(%d,2,3) = (%d,%d,%v), want (%d,%d,true)", n, gi, gj, ok, i, j)
			}
		}
	}
}

func TestIsPQPower(t *testing.T) {
	// t = p^i q^{i-1}, i > 1: for p=2, q=3 the first few are 12, 72, 432.
	cases := []struct {
		t    int64
		want bool
	}{
		{12, true}, {72, true}, {432, true}, {2592, true},
		{2, false},  // i=1, j=0: i not > 1
		{6, false},  // 2*3 = p^1 q^1
		{24, false}, // 2^3*3
		{1, false},  // i=0
		{36, false}, // 2^2 3^2
	}
	for _, c := range cases {
		if got := IsPQPower(c.t, 2, 3); got != c.want {
			t.Errorf("IsPQPower(%d,2,3) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestGCDLCM(t *testing.T) {
	if g := GCD(12, 18); g != 6 {
		t.Errorf("GCD(12,18) = %d, want 6", g)
	}
	if g := GCD(-12, 18); g != 6 {
		t.Errorf("GCD(-12,18) = %d, want 6", g)
	}
	if g := GCD(0, 5); g != 5 {
		t.Errorf("GCD(0,5) = %d, want 5", g)
	}
	l, err := LCM(4, 6)
	if err != nil || l != 12 {
		t.Errorf("LCM(4,6) = %d, %v; want 12", l, err)
	}
	if _, err := LCM(0, 3); err == nil {
		t.Errorf("LCM(0,3) should fail")
	}
	if _, err := LCM(math.MaxInt64, math.MaxInt64-1); err == nil {
		t.Errorf("LCM overflow should fail")
	}
}

func TestGCDProperties(t *testing.T) {
	f := func(a, b int32) bool {
		x, y := int64(a), int64(b)
		g := GCD(x, y)
		if x == 0 && y == 0 {
			return g == 0
		}
		if g <= 0 {
			return false
		}
		ax, ay := x, y
		if ax < 0 {
			ax = -ax
		}
		if ay < 0 {
			ay = -ay
		}
		return ax%g == 0 && ay%g == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValuationProperty(t *testing.T) {
	f := func(n uint16, pIdx uint8) bool {
		if n == 0 {
			return true
		}
		primes := []int64{2, 3, 5, 7, 11}
		p := primes[int(pIdx)%len(primes)]
		k, rest := Valuation(int64(n), p)
		back := rest
		for i := 0; i < k; i++ {
			back *= p
		}
		return back == int64(n) && rest%p != 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
