// Package anbn implements the concrete TVG-automaton of Figure 1 / Table 1
// of the paper: a deterministic time-varying graph G on three nodes whose
// no-wait language is the context-free, non-regular {aⁿbⁿ : n ≥ 1}.
//
// The construction uses two distinct primes p, q > 1 and encodes the
// numbers of a's and b's read so far into the current time:
//
//	after reading aᵏ            the time is pᵏ          (e0 multiplies by p)
//	after reading aⁿbʲ (j ≥ 1)  the time is pⁿqʲ        (e1, e2 multiply by q)
//
// and the accepting edges e3/e4 are present exactly at the times
// t = p (word "ab") and t = pⁱq^(i-1), i > 1 (words aⁱbⁱ), which by unique
// prime factorization pins the word to aⁿbⁿ. Table 1:
//
//	e  | presence ρ(e,t)=1 iff     | latency ζ(e,t)
//	e0 | always (t ≥ 1)            | (p−1)t
//	e1 | t > p                     | (q−1)t
//	e2 | t ≠ pⁱq^(i−1), i > 1      | (q−1)t
//	e3 | t = p                     | any (1 here)
//	e4 | t = pⁱq^(i−1), i > 1      | any (1 here)
//
// Reading starts at time t = 1, v0 is initial, v2 is accepting. The
// "t ≥ 1" qualifier makes the schedule well-formed at t = 0 (this repo
// requires latency ≥ 1, and ζ(e0, 0) would be 0); it does not affect the
// language since reading starts at 1.
package anbn

import (
	"fmt"
	"strings"

	"tvgwait/internal/core"
	"tvgwait/internal/lang"
	"tvgwait/internal/numth"
	"tvgwait/internal/tvg"
)

// Params selects the two distinct primes of the construction.
type Params struct {
	P, Q int64
}

// DefaultParams returns the smallest instance, p = 2 and q = 3.
func DefaultParams() Params { return Params{P: 2, Q: 3} }

// Validate checks that P and Q are distinct primes greater than 1.
func (p Params) Validate() error {
	if !numth.IsPrime(p.P) || !numth.IsPrime(p.Q) {
		return fmt.Errorf("anbn: p=%d and q=%d must both be prime", p.P, p.Q)
	}
	if p.P == p.Q {
		return fmt.Errorf("anbn: p and q must be distinct, got %d", p.P)
	}
	return nil
}

// New builds the Figure 1 TVG-automaton for the given primes.
func New(params Params) (*core.Automaton, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	p, q := params.P, params.Q
	g := tvg.New()
	v0 := g.AddNode("v0")
	v1 := g.AddNode("v1")
	v2 := g.AddNode("v2")

	// e0: v0 -a-> v0, always present (t >= 1), arrival p·t.
	g.MustAddEdge(tvg.Edge{
		From: v0, To: v0, Label: 'a', Name: "e0",
		Presence: tvg.PresenceFunc(func(t tvg.Time) bool { return t >= 1 }),
		Latency:  tvg.ScaleLatency{Factor: p},
	})
	// e1: v0 -b-> v1, present for t > p, arrival q·t.
	g.MustAddEdge(tvg.Edge{
		From: v0, To: v1, Label: 'b', Name: "e1",
		Presence: tvg.PresenceFunc(func(t tvg.Time) bool { return t > p }),
		Latency:  tvg.ScaleLatency{Factor: q},
	})
	// e2: v1 -b-> v1, present unless t = p^i q^(i-1) for some i > 1,
	// arrival q·t.
	g.MustAddEdge(tvg.Edge{
		From: v1, To: v1, Label: 'b', Name: "e2",
		Presence: tvg.PresenceFunc(func(t tvg.Time) bool {
			return t >= 1 && !numth.IsPQPower(t, p, q)
		}),
		Latency: tvg.ScaleLatency{Factor: q},
	})
	// e3: v0 -b-> v2, present exactly at t = p; latency "any" (1).
	g.MustAddEdge(tvg.Edge{
		From: v0, To: v2, Label: 'b', Name: "e3",
		Presence: tvg.NewTimeSet(p),
		Latency:  tvg.ConstLatency(1),
	})
	// e4: v1 -b-> v2, present exactly at t = p^i q^(i-1), i > 1;
	// latency "any" (1).
	g.MustAddEdge(tvg.Edge{
		From: v1, To: v2, Label: 'b', Name: "e4",
		Presence: tvg.PresenceFunc(func(t tvg.Time) bool {
			return numth.IsPQPower(t, p, q)
		}),
		Latency: tvg.ConstLatency(1),
	})

	a := core.NewAutomaton(g)
	a.AddInitial(v0)
	a.AddAccepting(v2)
	a.SetStartTime(1)
	return a, nil
}

// HorizonForLength returns a horizon sufficient for exact no-wait
// membership decisions on all words of length at most maxLen: every direct
// journey reading k ≤ maxLen symbols visits times bounded by
// max(p,q)^maxLen, since each symbol multiplies the current time by p or
// q (the accepting hops add 1). An error is returned if the bound
// overflows int64.
func HorizonForLength(params Params, maxLen int) (tvg.Time, error) {
	if err := params.Validate(); err != nil {
		return 0, err
	}
	base := params.P
	if params.Q > base {
		base = params.Q
	}
	h, err := numth.CheckedPow(base, maxLen)
	if err != nil {
		return 0, fmt.Errorf("anbn: horizon for maxLen %d: %w", maxLen, err)
	}
	h, err = numth.CheckedAdd(h, 2)
	if err != nil {
		return 0, fmt.Errorf("anbn: horizon for maxLen %d: %w", maxLen, err)
	}
	return h, nil
}

// Reference returns the reference language {aⁿbⁿ : n ≥ 1} that the
// construction must match under no-wait semantics.
func Reference() lang.Language { return lang.AnBn() }

// Table1 renders the presence/latency table of the paper's Table 1 for the
// given parameters.
func Table1(params Params) string {
	p, q := params.P, params.Q
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 (p=%d, q=%d): presence and latency of the edges of G\n", p, q)
	b.WriteString("  e  | Presence ρ(e,t)=1 iff      | Latency ζ(e,t)\n")
	b.WriteString("  ---+----------------------------+----------------\n")
	fmt.Fprintf(&b, "  e0 | always true                | (%d-1)t = %dt\n", p, p-1)
	fmt.Fprintf(&b, "  e1 | t > %-22d | (%d-1)t = %dt\n", p, q, q-1)
	fmt.Fprintf(&b, "  e2 | t != %d^i*%d^(i-1), i>1      | (%d-1)t = %dt\n", p, q, q, q-1)
	fmt.Fprintf(&b, "  e3 | t = %-23d | any (1)\n", p)
	fmt.Fprintf(&b, "  e4 | t = %d^i*%d^(i-1), i>1       | any (1)\n", p, q)
	return b.String()
}

// AcceptingTimes returns the times at which the accepting edges fire for
// word lengths n = 1..maxN: t = p for n = 1 and t = pⁿq^(n-1) for n ≥ 2.
// It is used by the experiment harness to print the time encoding.
func AcceptingTimes(params Params, maxN int) ([]tvg.Time, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	out := make([]tvg.Time, 0, maxN)
	for n := 1; n <= maxN; n++ {
		pn, err := numth.CheckedPow(params.P, n)
		if err != nil {
			return nil, fmt.Errorf("anbn: accepting time for n=%d: %w", n, err)
		}
		if n == 1 {
			out = append(out, pn)
			continue
		}
		qn, err := numth.CheckedPow(params.Q, n-1)
		if err != nil {
			return nil, fmt.Errorf("anbn: accepting time for n=%d: %w", n, err)
		}
		t, err := numth.CheckedMul(pn, qn)
		if err != nil {
			return nil, fmt.Errorf("anbn: accepting time for n=%d: %w", n, err)
		}
		out = append(out, t)
	}
	return out, nil
}
