package automata

import (
	"fmt"
	"strings"
)

// CompileRegex compiles a small regular-expression dialect into an NFA via
// the Thompson construction. Supported syntax:
//
//	literal runes   any rune except the metacharacters below
//	\x              escaped literal (for metacharacters)
//	e1 e2           concatenation (juxtaposition)
//	e1 | e2         alternation; an empty branch denotes ε ("a|" = a or ε)
//	e*  e+  e?      Kleene star, plus, optional
//	( e )           grouping
//
// The empty pattern denotes the language {ε}.
func CompileRegex(pattern string) (*NFA, error) {
	p := &regexParser{input: []rune(pattern)}
	frag, err := p.parseAlt()
	if err != nil {
		return nil, fmt.Errorf("automata: regex %q: %w", pattern, err)
	}
	if p.pos != len(p.input) {
		return nil, fmt.Errorf("automata: regex %q: unexpected %q at position %d", pattern, p.input[p.pos], p.pos)
	}
	a := p.nfa
	a.SetStart(frag.in)
	a.SetAccept(frag.out, true)
	return a, nil
}

// MustCompileRegex is CompileRegex but panics on error; for tests and
// statically-known patterns.
func MustCompileRegex(pattern string) *NFA {
	a, err := CompileRegex(pattern)
	if err != nil {
		panic(err)
	}
	return a
}

const regexMeta = "|*+?()\\"

type regexFrag struct {
	in, out State
}

type regexParser struct {
	input []rune
	pos   int
	nfa   *NFA
}

func (p *regexParser) ensureNFA() {
	if p.nfa == nil {
		p.nfa = NewNFA(0)
	}
}

func (p *regexParser) newFragEps() regexFrag {
	p.ensureNFA()
	in := p.nfa.AddState()
	out := p.nfa.AddState()
	p.nfa.AddEpsilon(in, out)
	return regexFrag{in, out}
}

func (p *regexParser) newFragSym(sym rune) regexFrag {
	p.ensureNFA()
	in := p.nfa.AddState()
	out := p.nfa.AddState()
	p.nfa.AddTransition(in, sym, out)
	return regexFrag{in, out}
}

// parseAlt parses e1 | e2 | ...
func (p *regexParser) parseAlt() (regexFrag, error) {
	frags := []regexFrag{}
	f, err := p.parseCat()
	if err != nil {
		return regexFrag{}, err
	}
	frags = append(frags, f)
	for p.pos < len(p.input) && p.input[p.pos] == '|' {
		p.pos++
		f, err := p.parseCat()
		if err != nil {
			return regexFrag{}, err
		}
		frags = append(frags, f)
	}
	if len(frags) == 1 {
		return frags[0], nil
	}
	in := p.nfa.AddState()
	out := p.nfa.AddState()
	for _, f := range frags {
		p.nfa.AddEpsilon(in, f.in)
		p.nfa.AddEpsilon(f.out, out)
	}
	return regexFrag{in, out}, nil
}

// parseCat parses a (possibly empty) concatenation of repeated atoms.
func (p *regexParser) parseCat() (regexFrag, error) {
	var frags []regexFrag
	for p.pos < len(p.input) {
		r := p.input[p.pos]
		if r == '|' || r == ')' {
			break
		}
		f, err := p.parseRep()
		if err != nil {
			return regexFrag{}, err
		}
		frags = append(frags, f)
	}
	if len(frags) == 0 {
		return p.newFragEps(), nil
	}
	for i := 1; i < len(frags); i++ {
		p.nfa.AddEpsilon(frags[i-1].out, frags[i].in)
	}
	return regexFrag{frags[0].in, frags[len(frags)-1].out}, nil
}

// parseRep parses an atom followed by any number of *, +, ? operators.
func (p *regexParser) parseRep() (regexFrag, error) {
	f, err := p.parseAtom()
	if err != nil {
		return regexFrag{}, err
	}
	for p.pos < len(p.input) {
		switch p.input[p.pos] {
		case '*':
			p.pos++
			in := p.nfa.AddState()
			out := p.nfa.AddState()
			p.nfa.AddEpsilon(in, f.in)
			p.nfa.AddEpsilon(in, out)
			p.nfa.AddEpsilon(f.out, f.in)
			p.nfa.AddEpsilon(f.out, out)
			f = regexFrag{in, out}
		case '+':
			p.pos++
			in := p.nfa.AddState()
			out := p.nfa.AddState()
			p.nfa.AddEpsilon(in, f.in)
			p.nfa.AddEpsilon(f.out, f.in)
			p.nfa.AddEpsilon(f.out, out)
			f = regexFrag{in, out}
		case '?':
			p.pos++
			in := p.nfa.AddState()
			out := p.nfa.AddState()
			p.nfa.AddEpsilon(in, f.in)
			p.nfa.AddEpsilon(in, out)
			p.nfa.AddEpsilon(f.out, out)
			f = regexFrag{in, out}
		default:
			return f, nil
		}
	}
	return f, nil
}

// parseAtom parses a literal, an escape, or a parenthesized group.
func (p *regexParser) parseAtom() (regexFrag, error) {
	if p.pos >= len(p.input) {
		return regexFrag{}, fmt.Errorf("unexpected end of pattern")
	}
	r := p.input[p.pos]
	switch r {
	case '(':
		p.pos++
		f, err := p.parseAlt()
		if err != nil {
			return regexFrag{}, err
		}
		if p.pos >= len(p.input) || p.input[p.pos] != ')' {
			return regexFrag{}, fmt.Errorf("missing closing parenthesis")
		}
		p.pos++
		return f, nil
	case ')':
		return regexFrag{}, fmt.Errorf("unexpected ')' at position %d", p.pos)
	case '*', '+', '?':
		return regexFrag{}, fmt.Errorf("repetition operator %q with nothing to repeat at position %d", r, p.pos)
	case '\\':
		if p.pos+1 >= len(p.input) {
			return regexFrag{}, fmt.Errorf("trailing backslash")
		}
		esc := p.input[p.pos+1]
		if !strings.ContainsRune(regexMeta, esc) {
			return regexFrag{}, fmt.Errorf("unknown escape \\%c", esc)
		}
		p.pos += 2
		return p.newFragSym(esc), nil
	default:
		p.pos++
		return p.newFragSym(r), nil
	}
}
