package engine

// Exported request validation. Each method runs the same checks its
// engine entry point performs — field-naming ErrInvalidSpec errors via
// specErr — so a front end (cmd/tvgserve) can reject a malformed
// request BEFORE it claims an admission slot or reaches the engine.
// Validation is pure spec arithmetic: no generation, no allocation
// proportional to the declared sizes. The engine re-checks on entry;
// these are a fast pre-filter, not a contract shift.

// Validate checks the scenario spec (defaults applied first, matching
// Engine.Run).
func (s ScenarioSpec) Validate() error {
	return s.withDefaults().validate()
}

// Validate checks the graph spec's bounds.
func (g GraphSpec) Validate() error {
	return g.validate()
}

// Validate checks the metrics request: graph bounds, mode syntax and
// count, and the t0 window.
func (r MetricsRequest) Validate() error {
	if err := r.Graph.validate(); err != nil {
		return err
	}
	modes := r.Modes
	if len(modes) == 0 {
		modes = []string{"nowait", "wait"}
	}
	parsed, err := ParseModes(modes)
	if err != nil {
		return err
	}
	if len(parsed) > maxModes {
		return specErr("at most %d modes, got %d", maxModes, len(parsed))
	}
	if r.T0 < 0 || r.T0 > r.Graph.Horizon {
		return specErr("t0 %d outside [0, %d]", r.T0, r.Graph.Horizon)
	}
	return nil
}

// Validate checks the spectrum request: graph bounds, ladder syntax and
// size, and the t0 window.
func (r SpectrumRequest) Validate() error {
	if err := r.Graph.validate(); err != nil {
		return err
	}
	modes := r.Modes
	if len(modes) == 0 {
		modes = defaultLadder
	}
	parsed, err := ParseModes(modes)
	if err != nil {
		return err
	}
	if len(parsed) > maxModes {
		return specErr("at most %d modes, got %d", maxModes, len(parsed))
	}
	if r.T0 < 0 || r.T0 > r.Graph.Horizon {
		return specErr("t0 %d outside [0, %d]", r.T0, r.Graph.Horizon)
	}
	return nil
}

// Validate checks the journey request: graph bounds, mode and kind
// syntax, endpoint range and the t0 window.
func (r JourneyRequest) Validate() error {
	if err := r.Graph.validate(); err != nil {
		return err
	}
	if _, err := ParseMode(r.Mode); err != nil {
		return err
	}
	switch r.Kind {
	case "", "foremost", "minhop", "fastest":
	default:
		return specErr("unknown journey kind %q (want foremost | minhop | fastest)", r.Kind)
	}
	if r.Src < 0 || int(r.Src) >= r.Graph.Nodes || r.Dst < 0 || int(r.Dst) >= r.Graph.Nodes {
		return specErr("endpoints (%d, %d) outside [0, %d)", r.Src, r.Dst, r.Graph.Nodes)
	}
	if r.T0 < 0 || r.T0 > r.Graph.Horizon {
		return specErr("t0 %d outside [0, %d]", r.T0, r.Graph.Horizon)
	}
	return nil
}
