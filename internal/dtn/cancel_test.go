package dtn

import (
	"context"
	"errors"
	"testing"

	"tvgwait/internal/gen"
	"tvgwait/internal/journey"
)

// TestFloodCancellation pins the flood's checkpoint contract: a done
// context aborts SimulateCtx/BroadcastCtx with an error wrapping both
// journey.ErrCanceled and the context's cause, a live context changes
// nothing, and an aborted scratch is immediately reusable (every buffer
// is epoch-validated or re-truncated by the next prepare).
func TestFloodCancellation(t *testing.T) {
	c, err := gen.Bernoulli(30, 0.08, 60, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScratch()
	msg := Message{ID: 1, Src: 0, Dst: 17}
	want, err := s.Simulate(c, journey.Wait(), msg)
	if err != nil {
		t.Fatal(err)
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.SimulateCtx(cancelled, c, journey.Wait(), msg); !errors.Is(err, journey.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("SimulateCtx on cancelled ctx: %v, want ErrCanceled wrapping context.Canceled", err)
	}
	if _, err := s.BroadcastCtx(cancelled, c, journey.Wait(), 0, 0); !errors.Is(err, journey.ErrCanceled) {
		t.Fatalf("BroadcastCtx on cancelled ctx: %v, want ErrCanceled", err)
	}

	// Reuse after abort: same scratch, live ctx, identical result.
	live, stop := context.WithCancel(context.Background())
	defer stop()
	got, err := s.SimulateCtx(live, c, journey.Wait(), msg)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("post-abort SimulateCtx = %+v, want %+v", got, want)
	}

	// Self-delivery short-circuits before the flood: even a cancelled
	// ctx answers (the message never entered a sweep).
	self := Message{ID: 2, Src: 3, Dst: 3}
	if res, err := s.SimulateCtx(cancelled, c, journey.Wait(), self); err != nil || !res.Delivered {
		t.Fatalf("self-delivery under cancelled ctx: res=%+v err=%v", res, err)
	}
}
