package tvg

import (
	"math/rand"
	"testing"
)

// randomScheduleGraph builds a graph with assorted schedule kinds so the
// CSR invariants are exercised across presence/latency implementations.
func randomScheduleGraph(t *testing.T, seed int64, nodes, edges int) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := New()
	g.AddNodes(nodes)
	for i := 0; i < edges; i++ {
		var pres Presence
		switch rng.Intn(3) {
		case 0:
			pattern := make([]bool, 2+rng.Intn(4))
			pattern[rng.Intn(len(pattern))] = true
			p, err := NewPeriodicPresence(pattern)
			if err != nil {
				t.Fatal(err)
			}
			pres = p
		case 1:
			var times []Time
			for t := Time(0); t <= 40; t++ {
				if rng.Intn(3) == 0 {
					times = append(times, t)
				}
			}
			pres = NewTimeSet(times...)
		default:
			pres = Always{}
		}
		g.MustAddEdge(Edge{
			From: Node(rng.Intn(nodes)), To: Node(rng.Intn(nodes)),
			Label:    rune('a' + rng.Intn(2)),
			Presence: pres,
			Latency:  ConstLatency(Time(1 + rng.Intn(3))),
		})
	}
	return g
}

// TestContactSetInvariants checks the CSR layout invariants documented in
// DESIGN.md §1 on randomized schedules.
func TestContactSetInvariants(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := randomScheduleGraph(t, seed, 5, 12)
		const horizon = 40
		cs, err := NewContactSet(g, horizon)
		if err != nil {
			t.Fatal(err)
		}
		contacts := cs.Contacts()
		// Sorted by (edge, dep), strictly increasing dep per edge, and
		// consistent denormalized endpoints.
		for i := 1; i < len(contacts); i++ {
			a, b := contacts[i-1], contacts[i]
			if a.Edge > b.Edge || (a.Edge == b.Edge && a.Dep >= b.Dep) {
				t.Fatalf("seed %d: contacts not sorted by (edge, dep) at %d: %+v then %+v", seed, i, a, b)
			}
		}
		for i, c := range contacts {
			e, ok := g.Edge(c.Edge)
			if !ok || e.From != c.From || e.To != c.To {
				t.Fatalf("seed %d: contact %d endpoints disagree with edge: %+v", seed, i, c)
			}
			if c.Arr <= c.Dep {
				t.Fatalf("seed %d: contact %d does not make progress: %+v", seed, i, c)
			}
		}
		// Edge ranges partition the contact array and match the brute
		// per-tick evaluation of the schedules.
		total := 0
		for id := EdgeID(0); int(id) < g.NumEdges(); id++ {
			lo, hi := cs.EdgeRange(id)
			if lo != total {
				t.Fatalf("seed %d: edge %d range [%d,%d) does not continue partition at %d", seed, id, lo, hi, total)
			}
			total = hi
			e, _ := g.Edge(id)
			want := 0
			for tick := Time(0); tick <= horizon; tick++ {
				if e.Presence.Present(tick) {
					want++
					if arr, ok := cs.ArrivalAt(id, tick); !ok || arr != tick+e.Latency.Crossing(tick) {
						t.Fatalf("seed %d: ArrivalAt(%d, %d) = %v, %v", seed, id, tick, arr, ok)
					}
				} else if cs.PresentAt(id, tick) {
					t.Fatalf("seed %d: PresentAt(%d, %d) should be false", seed, id, tick)
				}
			}
			if got := cs.NumDepartures(id); got != want {
				t.Fatalf("seed %d: edge %d has %d departures, want %d", seed, id, got, want)
			}
		}
		if total != cs.NumContacts() {
			t.Fatalf("seed %d: edge ranges cover %d of %d contacts", seed, total, cs.NumContacts())
		}
		// Per-tick index: every contact appears exactly at its departure
		// tick, in ascending edge order.
		seen := 0
		for tick := Time(0); tick <= horizon; tick++ {
			ks := cs.AtTick(tick)
			for i, k := range ks {
				c := contacts[k]
				if c.Dep != tick {
					t.Fatalf("seed %d: AtTick(%d) holds contact departing at %d", seed, tick, c.Dep)
				}
				if i > 0 && contacts[ks[i-1]].Edge >= c.Edge {
					t.Fatalf("seed %d: AtTick(%d) not in ascending edge order", seed, tick)
				}
			}
			seen += len(ks)
		}
		if seen != cs.NumContacts() {
			t.Fatalf("seed %d: tick index covers %d of %d contacts", seed, seen, cs.NumContacts())
		}
		// Out-edge CSR agrees with the Graph's adjacency.
		for n := Node(0); int(n) < g.NumNodes(); n++ {
			got := cs.OutEdges(n)
			want := g.OutEdges(n)
			if len(got) != len(want) {
				t.Fatalf("seed %d: OutEdges(%d) = %v, want %v", seed, n, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d: OutEdges(%d) = %v, want %v", seed, n, got, want)
				}
			}
		}
	}
}

func TestContactSetTickQueriesOutOfRange(t *testing.T) {
	g := New()
	u := g.AddNode("u")
	g.MustAddEdge(Edge{From: u, To: u, Label: 'a', Presence: Always{}, Latency: ConstLatency(1)})
	cs, err := NewContactSet(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cs.AtTick(-1) != nil || cs.AtTick(6) != nil {
		t.Error("AtTick outside [0, horizon] should be nil")
	}
	if cs.ContactsAt(9) != nil {
		t.Error("ContactsAt past horizon should be nil")
	}
	if lo, hi := cs.EdgeRange(EdgeID(3)); lo != hi {
		t.Error("EdgeRange on bad id should be empty")
	}
	if got := cs.EdgeContacts(EdgeID(-1)); len(got) != 0 {
		t.Error("EdgeContacts on bad id should be empty")
	}
	if cs.NumContacts() != 6 || cs.TotalContacts() != 6 {
		t.Errorf("contact count wrong: %d", cs.NumContacts())
	}
}

// Regression: Crossing and Arrival must not panic on invalid edge ids.
func TestGraphCrossingArrivalInvalidEdge(t *testing.T) {
	g := New()
	u := g.AddNode("u")
	g.MustAddEdge(Edge{From: u, To: u, Label: 'a', Presence: Always{}, Latency: ConstLatency(4)})
	if got := g.Crossing(EdgeID(5), 0); got != 0 {
		t.Errorf("Crossing on invalid id = %d, want 0", got)
	}
	if got := g.Crossing(EdgeID(-1), 0); got != 0 {
		t.Errorf("Crossing on negative id = %d, want 0", got)
	}
	if got := g.Arrival(EdgeID(5), 7); got != 7 {
		t.Errorf("Arrival on invalid id = %d, want 7", got)
	}
	if got := g.Crossing(0, 0); got != 4 {
		t.Errorf("Crossing on valid id = %d, want 4", got)
	}
}

// Regression: AddNodes must not collide with user-added "v<k>" names.
func TestAddNodesNameCollision(t *testing.T) {
	g := New()
	g.AddNode("v1") // node 0, named like an anonymous node
	first := g.AddNodes(3)
	if first != 1 {
		t.Fatalf("AddNodes returned first=%d, want 1", first)
	}
	if g.NumNodes() != 4 {
		t.Fatalf("AddNodes(3) after a colliding name left %d nodes, want 4", g.NumNodes())
	}
	names := map[string]bool{}
	for n := Node(0); int(n) < g.NumNodes(); n++ {
		name := g.NodeName(n)
		if names[name] {
			t.Fatalf("duplicate node name %q", name)
		}
		names[name] = true
	}
}

// Regression: the adjacency is maintained incrementally and returns
// defensive copies.
func TestGraphOutEdgesIncremental(t *testing.T) {
	g := New()
	u := g.AddNode("u")
	v := g.AddNode("v")
	e0 := g.MustAddEdge(Edge{From: u, To: v, Label: 'a', Presence: Always{}, Latency: ConstLatency(1)})
	e1 := g.MustAddEdge(Edge{From: v, To: u, Label: 'b', Presence: Always{}, Latency: ConstLatency(1)})
	e2 := g.MustAddEdge(Edge{From: u, To: u, Label: 'c', Presence: Always{}, Latency: ConstLatency(1)})
	got := g.OutEdges(u)
	if len(got) != 2 || got[0] != e0 || got[1] != e2 {
		t.Fatalf("OutEdges(u) = %v, want [%d %d]", got, e0, e2)
	}
	got[0] = e1 // must not corrupt the graph
	if again := g.OutEdges(u); again[0] != e0 {
		t.Error("OutEdges leaked internal adjacency state")
	}
	if g.OutEdges(Node(9)) != nil {
		t.Error("OutEdges on invalid node should be nil")
	}
	if g.OutEdges(v)[0] != e1 {
		t.Errorf("OutEdges(v) = %v", g.OutEdges(v))
	}
}
