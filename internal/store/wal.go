package store

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"tvgwait/internal/faultinject"
	"tvgwait/internal/tvg"
)

// WAL segment layout ("TVGWAL01", little-endian):
//
//	header   magic[8] version u32 segSeq u64 hcrc u32
//	records  × { size u32 crc u32 payload }
//
// payload: type u8, lsn u64, nameLen u32, name, then per type —
// create: nodes i64 horizon i64; append: count u32, count × (from, to,
// dep, arr as i64). LSNs are assigned once, strictly increasing across
// segment rolls, and never reused, so replay after any snapshot is a
// pure suffix filter on lsn > coveredLSN.
//
// Durability contract (the fsync/ack ordering of DESIGN.md §12): a
// record is DURABLE once its bytes and frame are fsynced. Append
// returns a wait func that blocks until the record's LSN is durable
// under the configured policy; the ingest path acks HTTP requests only
// after that wait returns. A segment is SEALED by fsync+close on roll,
// so only the newest segment can ever hold a torn tail — and a torn
// tail is exactly what a crash between write and fsync produces, which
// is why OpenWAL truncates it silently instead of erroring: those
// records were never acked.

const (
	walMagic      = "TVGWAL01"
	walVersion    = 1
	walHeaderWire = 8 + 4 + 8 + 4
	walFrameWire  = 4 + 4

	// RecCreate logs a stream creation (name, nodes, horizon).
	RecCreate byte = 1
	// RecAppend logs one acked /contacts batch.
	RecAppend byte = 2

	// maxWALRecordBytes caps a single record's declared payload — far
	// above the engine's batch cap, low enough that a corrupt length
	// prefix cannot force a huge allocation even in a sparse file.
	maxWALRecordBytes = 1 << 25

	// DefaultSegmentBytes is the roll threshold when the caller passes 0.
	DefaultSegmentBytes = 8 << 20

	contactRecWire = 32
)

// SyncPolicy selects when appended WAL records are fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs before every append's wait returns (group
	// commit: concurrent appenders share one fsync).
	SyncAlways SyncPolicy = iota
	// SyncBatch fsyncs on a short timer (~2ms); waits block until the
	// covering batch fsync lands.
	SyncBatch
	// SyncNone never fsyncs on append (only on seal and close). Waits
	// return immediately; a crash may lose recently acked batches.
	SyncNone
)

// ParseSyncPolicy maps the -fsync flag values to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "batch":
		return SyncBatch, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("store: unknown fsync policy %q (want always, batch or none)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncBatch:
		return "batch"
	default:
		return "none"
	}
}

// Record is one WAL entry. Create records carry Nodes/Horizon; append
// records carry Recs.
type Record struct {
	Type    byte
	LSN     uint64
	Stream  string
	Nodes   int
	Horizon tvg.Time
	Recs    []tvg.ContactRecord
}

func encodeRecord(dst []byte, r *Record) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // frame, patched below
	body := len(dst)
	dst = append(dst, r.Type)
	dst = binary.LittleEndian.AppendUint64(dst, r.LSN)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Stream)))
	dst = append(dst, r.Stream...)
	switch r.Type {
	case RecCreate:
		dst = binary.LittleEndian.AppendUint64(dst, uint64(r.Nodes))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(r.Horizon))
	case RecAppend:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Recs)))
		for i := range r.Recs {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(r.Recs[i].From))
			dst = binary.LittleEndian.AppendUint64(dst, uint64(r.Recs[i].To))
			dst = binary.LittleEndian.AppendUint64(dst, uint64(r.Recs[i].Dep))
			dst = binary.LittleEndian.AppendUint64(dst, uint64(r.Recs[i].Arr))
		}
	}
	payload := dst[body:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], checksum(payload))
	return dst
}

// decodeRecord parses one record payload (already CRC-verified).
// Declared counts are validated against the payload length before any
// allocation.
func decodeRecord(p []byte) (*Record, error) {
	if len(p) < 1+8+4 {
		return nil, fmt.Errorf("%w: record payload of %d bytes", ErrCorrupt, len(p))
	}
	r := &Record{Type: p[0], LSN: binary.LittleEndian.Uint64(p[1:])}
	nameLen := binary.LittleEndian.Uint32(p[9:])
	p = p[13:]
	if uint64(nameLen) > uint64(len(p)) {
		return nil, fmt.Errorf("%w: record declares a %d-byte stream name in %d bytes", ErrCorrupt, nameLen, len(p))
	}
	r.Stream = string(p[:nameLen])
	p = p[nameLen:]
	switch r.Type {
	case RecCreate:
		if len(p) != 16 {
			return nil, fmt.Errorf("%w: create record with %d trailing bytes", ErrCorrupt, len(p))
		}
		r.Nodes = int(int64(binary.LittleEndian.Uint64(p)))
		r.Horizon = tvg.Time(binary.LittleEndian.Uint64(p[8:]))
	case RecAppend:
		if len(p) < 4 {
			return nil, fmt.Errorf("%w: append record missing its count", ErrCorrupt)
		}
		n := int(binary.LittleEndian.Uint32(p))
		p = p[4:]
		if !mulFits(n, contactRecWire) || n*contactRecWire != len(p) {
			return nil, fmt.Errorf("%w: append record declares %d contacts in %d bytes", ErrCorrupt, n, len(p))
		}
		r.Recs = make([]tvg.ContactRecord, n)
		for i := range r.Recs {
			rec := p[i*contactRecWire:]
			r.Recs[i] = tvg.ContactRecord{
				From: tvg.Node(binary.LittleEndian.Uint64(rec[0:])),
				To:   tvg.Node(binary.LittleEndian.Uint64(rec[8:])),
				Dep:  tvg.Time(binary.LittleEndian.Uint64(rec[16:])),
				Arr:  tvg.Time(binary.LittleEndian.Uint64(rec[24:])),
			}
		}
	default:
		return nil, fmt.Errorf("%w: unknown record type %d", ErrCorrupt, r.Type)
	}
	return r, nil
}

// sealedSeg is a closed, fsynced segment: immutable, torn-free, and a
// candidate for deletion once a durable snapshot covers its last LSN.
type sealedSeg struct {
	seq     uint64
	lastLSN uint64
	path    string
}

// WAL is the append end of the log. All methods are safe for
// concurrent use.
type WAL struct {
	dir      string
	policy   SyncPolicy
	segBytes int64
	fault    faultinject.Hook

	mu      sync.Mutex
	cond    *sync.Cond
	f       *os.File
	seq     uint64 // active segment sequence number
	size    int64  // bytes written to the active segment
	nextLSN uint64
	written uint64 // highest LSN written to the active segment
	durable uint64 // highest LSN known fsynced
	syncing bool   // a group-commit fsync is in flight
	err     error  // sticky failure; the WAL refuses writes after it
	sealed  []sealedSeg
	closed  bool

	batchStop chan struct{}
	batchDone chan struct{}
}

func segPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.log", seq))
}

func segHeader(seq uint64) []byte {
	h := make([]byte, 0, walHeaderWire)
	h = append(h, walMagic...)
	h = binary.LittleEndian.AppendUint32(h, walVersion)
	h = binary.LittleEndian.AppendUint64(h, seq)
	return binary.LittleEndian.AppendUint32(h, checksum(h))
}

// parseSegment walks one segment image and returns the decoded records
// plus the byte offset just past the last intact record. A clean parse
// consumes the whole image (good == len(p)); anything after good is a
// torn tail (or worse). Arbitrary input never panics: every declared
// length is checked against the remaining image before use.
func parseSegment(p []byte) (recs []*Record, good int, err error) {
	if len(p) < walHeaderWire {
		return nil, 0, fmt.Errorf("%w: %d bytes of WAL header", ErrTruncated, len(p))
	}
	if string(p[:8]) != walMagic {
		return nil, 0, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(p[8:]); v != walVersion {
		return nil, 0, fmt.Errorf("%w: WAL version %d", ErrBadVersion, v)
	}
	if checksum(p[:walHeaderWire-4]) != binary.LittleEndian.Uint32(p[walHeaderWire-4:]) {
		return nil, 0, fmt.Errorf("%w: WAL segment header", ErrChecksum)
	}
	off := walHeaderWire
	for {
		if len(p)-off < walFrameWire {
			return recs, off, nil // zero or a few trailing bytes: torn frame
		}
		// Compare the declared length unsigned BEFORE converting: on a
		// 32-bit platform int(Uint32(...)) wraps a >=2^31 value negative,
		// which would slip past both guards and panic the slice below.
		size32 := binary.LittleEndian.Uint32(p[off:])
		crc := binary.LittleEndian.Uint32(p[off+4:])
		if uint64(size32) > maxWALRecordBytes || uint64(size32) > uint64(len(p)-off-walFrameWire) {
			return recs, off, nil // torn payload
		}
		size := int(size32)
		payload := p[off+walFrameWire : off+walFrameWire+size]
		if checksum(payload) != crc {
			return recs, off, nil // torn or corrupt record: stop here
		}
		rec, derr := decodeRecord(payload)
		if derr != nil {
			// A record with a valid CRC but invalid structure is real
			// corruption, not a torn write — surface it.
			return recs, off, derr
		}
		recs = append(recs, rec)
		off += walFrameWire + size
	}
}

// WALOptions configures OpenWAL. The zero value selects SyncAlways,
// the default roll threshold and no fault hook.
type WALOptions struct {
	Policy       SyncPolicy
	SegmentBytes int64
	Fault        faultinject.Hook
}

// OpenWAL opens (or creates) the log under dir, replays every intact
// record in LSN order through fn, truncates a torn tail on the newest
// segment, and returns the WAL positioned to append. Sealed segments
// with corrupt interiors stop the replay with a typed error — that is
// lost acked data, and silently skipping it would break the recovery
// guarantee.
func OpenWAL(dir string, opts WALOptions, fn func(*Record) error) (*WAL, error) {
	segBytes := opts.SegmentBytes
	if segBytes <= 0 {
		segBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names) // fixed-width hex: lexical order == numeric order

	w := &WAL{dir: dir, policy: opts.Policy, segBytes: segBytes, fault: opts.Fault}
	w.cond = sync.NewCond(&w.mu)

	var lastPath string
	var lastGood int
	for i, path := range names {
		img, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		recs, good, perr := parseSegment(img)
		final := i == len(names)-1
		if perr != nil {
			return nil, fmt.Errorf("%s: %w", filepath.Base(path), perr)
		}
		if good < len(img) && !final {
			// A sealed segment may never be torn; a short read here means
			// the file was damaged after sealing.
			return nil, fmt.Errorf("%s: %w: %d bytes beyond the last intact record in a sealed segment",
				filepath.Base(path), ErrChecksum, len(img)-good)
		}
		var segLast uint64
		for _, rec := range recs {
			if rec.LSN < w.nextLSN {
				return nil, fmt.Errorf("%s: %w: LSN %d out of order", filepath.Base(path), ErrCorrupt, rec.LSN)
			}
			if fn != nil {
				if err := fn(rec); err != nil {
					return nil, err
				}
			}
			segLast = rec.LSN
			w.nextLSN = rec.LSN + 1
		}
		seq := binary.LittleEndian.Uint64(img[12:])
		if final {
			lastPath, lastGood = path, good
			w.seq, w.size = seq, int64(good)
			w.written = segLast
		} else {
			w.sealed = append(w.sealed, sealedSeg{seq: seq, lastLSN: segLast, path: path})
		}
	}
	if w.nextLSN == 0 {
		w.nextLSN = 1
	}
	w.durable = w.nextLSN - 1 // everything replayed is on disk by definition

	if lastPath == "" {
		if err := w.newSegmentLocked(1); err != nil {
			return nil, err
		}
	} else {
		f, err := os.OpenFile(lastPath, os.O_RDWR, 0o644)
		if err != nil {
			return nil, err
		}
		if fi, err := f.Stat(); err == nil && fi.Size() > int64(lastGood) {
			// The torn-tail rule: drop the partial record a crash left
			// behind. It was never fsynced, so it was never acked.
			if err := f.Truncate(int64(lastGood)); err != nil {
				f.Close()
				return nil, err
			}
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, err
			}
		}
		if _, err := f.Seek(int64(lastGood), 0); err != nil {
			f.Close()
			return nil, err
		}
		w.f = f
	}

	if w.policy == SyncBatch {
		w.batchStop = make(chan struct{})
		w.batchDone = make(chan struct{})
		go w.batchLoop()
	}
	return w, nil
}

// newSegmentLocked creates and fsyncs segment seq and makes it active.
// Callers hold w.mu (or are inside OpenWAL before the WAL is shared).
func (w *WAL) newSegmentLocked(seq uint64) error {
	f, err := os.OpenFile(segPath(w.dir, seq), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	h := segHeader(seq)
	if _, err := f.Write(h); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.f, w.seq, w.size = f, seq, int64(len(h))
	return nil
}

// Append writes rec to the log, assigns its LSN, and returns a wait
// func that blocks until the record is durable under the sync policy.
// The caller must not ack the batch upstream before wait returns nil.
func (w *WAL) Append(rec *Record) (lsn uint64, wait func() error, err error) {
	if err := w.fault.Fire(faultinject.SiteWALAppend); err != nil {
		return 0, nil, fmt.Errorf("store: wal fault: %w", err)
	}
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return 0, nil, err
	}
	if w.closed {
		w.mu.Unlock()
		return 0, nil, fmt.Errorf("store: wal is closed")
	}
	rec.LSN = w.nextLSN
	frame := encodeRecord(nil, rec)
	if _, werr := w.f.Write(frame); werr != nil {
		w.err = fmt.Errorf("store: wal append: %w", werr)
		err := w.err
		w.cond.Broadcast()
		w.mu.Unlock()
		return 0, nil, err
	}
	w.nextLSN++
	w.written = rec.LSN
	w.size += int64(len(frame))
	lsn = rec.LSN
	if w.size >= w.segBytes {
		if rerr := w.rollLocked(); rerr != nil {
			w.err = rerr
			w.cond.Broadcast()
			w.mu.Unlock()
			return 0, nil, rerr
		}
	}
	switch w.policy {
	case SyncNone:
		if w.durable < lsn {
			w.durable = lsn // declared durable without fsync: the policy's contract
		}
		w.mu.Unlock()
		return lsn, func() error { return nil }, nil
	case SyncAlways:
		w.mu.Unlock()
		return lsn, func() error { return w.syncTo(lsn) }, nil
	default: // SyncBatch
		w.mu.Unlock()
		return lsn, func() error { return w.waitDurable(lsn) }, nil
	}
}

// syncTo drives group commit: the first waiter past the durable
// watermark performs one fsync covering every record written so far;
// racers blocked behind it observe the advanced watermark and return
// without their own fsync.
//
// The fsync runs outside w.mu, so a concurrent append crossing the
// roll threshold can seal (fsync + close) the very file the group
// commit holds. Segment sequence numbers are never reused, so w.seq
// changing while the Sync was in flight proves a roll superseded it —
// and rollLocked only advances w.seq after its own fsync succeeded, so
// everything the group commit meant to cover is already durable and
// any error from the stale handle (typically os.ErrClosed) is moot.
// Treating it as a failure would poison the sticky w.err over records
// that are safely on disk.
func (w *WAL) syncTo(lsn uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		if w.durable >= lsn {
			return nil
		}
		if w.err != nil {
			return w.err
		}
		if w.closed {
			return fmt.Errorf("store: wal closed before LSN %d became durable", lsn)
		}
		if !w.syncing {
			w.syncing = true
			f, seq, target := w.f, w.seq, w.written
			w.mu.Unlock()
			err := w.fault.Fire(faultinject.SiteWALSync)
			if err == nil {
				err = f.Sync()
			}
			w.mu.Lock()
			w.syncing = false
			switch {
			case w.seq != seq:
				// Rolled while syncing: the seal fsync already made target
				// durable (rollLocked advanced w.durable); err is moot.
			case err != nil:
				w.err = fmt.Errorf("store: wal fsync: %w", err)
			case w.durable < target:
				w.durable = target
			}
			w.cond.Broadcast()
			continue
		}
		w.cond.Wait()
	}
}

// waitDurable blocks until lsn is fsynced (by the batch loop or a
// roll) or the WAL fails.
func (w *WAL) waitDurable(lsn uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.durable < lsn && w.err == nil && !w.closed {
		w.cond.Wait()
	}
	if w.durable >= lsn {
		return nil
	}
	if w.err != nil {
		return w.err
	}
	return fmt.Errorf("store: wal closed before LSN %d became durable", lsn)
}

// batchLoop is the SyncBatch flusher: a short-period ticker that
// fsyncs whenever records are pending.
func (w *WAL) batchLoop() {
	defer close(w.batchDone)
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-w.batchStop:
			return
		case <-tick.C:
			w.mu.Lock()
			pending := w.err == nil && !w.closed && w.written > w.durable
			var f *os.File
			var seq, target uint64
			if pending && !w.syncing {
				w.syncing = true
				f, seq, target = w.f, w.seq, w.written
			}
			w.mu.Unlock()
			if f == nil {
				continue
			}
			err := w.fault.Fire(faultinject.SiteWALSync)
			if err == nil {
				err = f.Sync()
			}
			w.mu.Lock()
			w.syncing = false
			switch {
			case w.seq != seq:
				// Rolled while syncing: the seal fsync covered target, so
				// an error from the superseded handle is moot (see syncTo).
			case err != nil:
				w.err = fmt.Errorf("store: wal fsync: %w", err)
			case w.durable < target:
				w.durable = target
			}
			w.cond.Broadcast()
			w.mu.Unlock()
		}
	}
}

// rollLocked seals the active segment (fsync + close) and starts the
// next one. Callers hold w.mu.
func (w *WAL) rollLocked() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: wal seal: %w", err)
	}
	if w.durable < w.written {
		w.durable = w.written
		w.cond.Broadcast()
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("store: wal seal: %w", err)
	}
	w.sealed = append(w.sealed, sealedSeg{seq: w.seq, lastLSN: w.written, path: segPath(w.dir, w.seq)})
	return w.newSegmentLocked(w.seq + 1)
}

// Roll seals the active segment and starts a fresh one, returning the
// last LSN now guaranteed inside sealed segments. The compactor calls
// it so that a subsequent snapshot covers whole segments only.
func (w *WAL) Roll() (lastSealedLSN uint64, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	if w.closed {
		return 0, fmt.Errorf("store: wal is closed")
	}
	if err := w.rollLocked(); err != nil {
		w.err = err
		w.cond.Broadcast()
		return 0, err
	}
	return w.written, nil
}

// PruneSealed deletes sealed segments whose every record is at or
// below coveredLSN — the compaction invariant: a segment dies only
// when a durable snapshot already holds everything it says.
func (w *WAL) PruneSealed(coveredLSN uint64) (removed int, err error) {
	w.mu.Lock()
	keep := w.sealed[:0]
	var victims []sealedSeg
	for _, s := range w.sealed {
		if s.lastLSN <= coveredLSN {
			victims = append(victims, s)
		} else {
			keep = append(keep, s)
		}
	}
	w.sealed = keep
	w.mu.Unlock()
	var failed []sealedSeg
	for _, s := range victims {
		if rerr := os.Remove(s.path); rerr != nil {
			failed = append(failed, s)
			if err == nil {
				err = rerr
			}
			continue
		}
		removed++
	}
	if len(failed) > 0 {
		// Put unremovable segments back so the next compaction retries
		// them instead of leaking the files on disk forever.
		w.mu.Lock()
		w.sealed = append(w.sealed, failed...)
		sort.Slice(w.sealed, func(i, j int) bool { return w.sealed[i].seq < w.sealed[j].seq })
		w.mu.Unlock()
	}
	if removed > 0 {
		if serr := syncDir(w.dir); serr != nil && err == nil {
			err = serr
		}
	}
	return removed, err
}

// Size returns the total bytes across the active and sealed segments —
// the number the compaction threshold watches.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	total := w.size
	for _, s := range w.sealed {
		if fi, err := os.Stat(s.path); err == nil {
			total += fi.Size()
		}
	}
	return total
}

// DurableLSN returns the highest LSN known to be on disk.
func (w *WAL) DurableLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.durable
}

// NextLSN returns the LSN the next append will receive.
func (w *WAL) NextLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN
}

// Sync forces everything written so far onto disk regardless of
// policy — the -drain path calls it before the engine shuts down.
func (w *WAL) Sync() error {
	w.mu.Lock()
	lsn := w.written
	w.mu.Unlock()
	if lsn == 0 {
		return nil
	}
	return w.syncTo(lsn)
}

// Close flushes, fsyncs and closes the log. Further appends fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	if w.batchStop != nil {
		close(w.batchStop)
		<-w.batchDone
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	// Drain any in-flight group-commit fsync before closing its file:
	// closing underneath it would fail that sync with os.ErrClosed and
	// hand its waiters an error over records this Close is about to make
	// durable anyway.
	for w.syncing {
		w.cond.Wait()
	}
	var err error
	if w.f != nil {
		if w.err == nil {
			if serr := w.f.Sync(); serr != nil {
				err = serr
			} else if w.durable < w.written {
				w.durable = w.written
			}
		}
		if cerr := w.f.Close(); cerr != nil && err == nil {
			err = cerr
		}
		w.f = nil
	}
	w.cond.Broadcast()
	return err
}
