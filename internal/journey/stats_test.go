package journey

import (
	"math/rand"
	"slices"
	"testing"

	"tvgwait/internal/gen"
	"tvgwait/internal/obs"
	"tvgwait/internal/tvg"
)

// TestSweepStatsMultiSource checks the telemetry contract of the
// bit-parallel sweeps: one Blocks increment per 64-source block, a
// contact tally covering every swept tick, and — the part that actually
// matters — results bit-identical with and without a stats sink.
func TestSweepStatsMultiSource(t *testing.T) {
	for _, n := range []int{5, 64, 70, 130} {
		c, err := gen.Bernoulli(n, 0.01, 40, 7, nil)
		if err != nil {
			t.Fatal(err)
		}
		wantBlocks := int64((n + blockBits - 1) / blockBits)
		for _, mode := range []Mode{NoWait(), BoundedWait(3), Wait()} {
			var st obs.SweepStats
			got := AllForemostStats(c, mode, 0, 4, 0, &st)
			want := AllForemostParallel(c, mode, 0, 4)
			if !slices.Equal(got.arr, want.arr) {
				t.Fatalf("n=%d %s: AllForemostStats result differs from AllForemostParallel", n, mode)
			}
			if st.Blocks.Value() != wantBlocks {
				t.Fatalf("n=%d %s: Blocks = %d, want %d", n, mode, st.Blocks.Value(), wantBlocks)
			}
			if st.Contacts.Value() <= 0 {
				t.Fatalf("n=%d %s: Contacts = %d, want > 0", n, mode, st.Contacts.Value())
			}
			if st.SparseFallbacks.Value() != 0 {
				t.Fatalf("n=%d %s: SparseFallbacks = %d on a dense-grid sweep", n, mode, st.SparseFallbacks.Value())
			}

			var rst obs.SweepStats
			gotR := ReachabilityMatrixStats(c, mode, 0, 4, 0, &rst)
			wantR := ReachabilityMatrixParallel(c, mode, 0, 4)
			if !slices.Equal(gotR.bits, wantR.bits) {
				t.Fatalf("n=%d %s: ReachabilityMatrixStats result differs", n, mode)
			}
			if rst.Blocks.Value() != wantBlocks {
				t.Fatalf("n=%d %s: reach Blocks = %d, want %d", n, mode, rst.Blocks.Value(), wantBlocks)
			}
		}
	}
}

// TestSweepStatsEarlyExit builds a network every sweep resolves long
// before the horizon (a dense burst of contacts early, dead air after),
// so every block must retire early under Wait.
func TestSweepStatsEarlyExit(t *testing.T) {
	c, err := gen.Bernoulli(40, 0.3, 500, 11, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !TemporallyConnected(c, Wait(), 0) {
		t.Skip("generator no longer yields a connected burst; early-exit setup invalid")
	}
	var st obs.SweepStats
	AllForemostStats(c, Wait(), 0, 1, 0, &st)
	if st.EarlyExits.Value() != st.Blocks.Value() {
		t.Fatalf("EarlyExits = %d, want every block (%d) to retire early", st.EarlyExits.Value(), st.Blocks.Value())
	}
	if st.DueExpiries.Value() != 0 {
		t.Fatalf("DueExpiries = %d under unbounded Wait, want 0", st.DueExpiries.Value())
	}
}

// TestSweepStatsDueExpiries checks that bounded waiting reports expiry
// work: under BoundedWait on a sparse stream, pending arrivals must
// lapse.
func TestSweepStatsDueExpiries(t *testing.T) {
	c, err := gen.Bernoulli(64, 0.002, 120, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	var st obs.SweepStats
	AllForemostStats(c, BoundedWait(2), 0, 1, 0, &st)
	if st.DueExpiries.Value() <= 0 {
		t.Fatalf("DueExpiries = %d under BoundedWait(2), want > 0", st.DueExpiries.Value())
	}
}

// TestSweepStatsSpectrum pins the spectrum sweep's telemetry: block
// count, rung retirements on a ladder whose lower rungs resolve, and
// result equality with the stats-free entry point.
func TestSweepStatsSpectrum(t *testing.T) {
	ladder, err := NewLadder(NoWait(), BoundedWait(2), BoundedWait(6), Wait())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{30, 70} {
		c, err := gen.Bernoulli(n, 0.05, 60, 5, nil)
		if err != nil {
			t.Fatal(err)
		}
		var st obs.SweepStats
		got := WaitSpectrumStats(c, ladder, 0, 4, 0, &st)
		want := WaitSpectrumParallel(c, ladder, 0, 4)
		for r := 0; r < ladder.Len(); r++ {
			if !slices.Equal(got.Arrivals(r).arr, want.Arrivals(r).arr) {
				t.Fatalf("n=%d: rung %d differs between WaitSpectrumStats and WaitSpectrumParallel", n, r)
			}
		}
		wantBlocks := int64((n + blockBits - 1) / blockBits)
		if st.Blocks.Value() != wantBlocks {
			t.Fatalf("n=%d: Blocks = %d, want %d", n, st.Blocks.Value(), wantBlocks)
		}
		if st.Contacts.Value() <= 0 {
			t.Fatalf("n=%d: Contacts = %d, want > 0", n, st.Contacts.Value())
		}
		if st.RungRetirements.Value() <= 0 {
			t.Fatalf("n=%d: RungRetirements = %d, want > 0 (dense network resolves lower rungs)", n, st.RungRetirements.Value())
		}
	}
}

// TestSweepStatsSparseFallback reuses the over-limit grid setup from the
// sweep tests: nodes × span past msDenseCellLimit must report one
// sparse fallback per block.
func TestSweepStatsSparseFallback(t *testing.T) {
	const n = 200
	const horizon = tvg.Time(45000)
	if int64(n)*int64(horizon+1) <= msDenseCellLimit {
		t.Fatalf("test setup no longer exceeds msDenseCellLimit")
	}
	rng := rand.New(rand.NewSource(3))
	g := tvg.New()
	g.AddNodes(n)
	for i := 0; i < n; i++ {
		times := make([]tvg.Time, 0, 6)
		for k := 0; k < 6; k++ {
			times = append(times, tvg.Time(rng.Int63n(int64(horizon))))
		}
		g.MustAddEdge(tvg.Edge{
			From: tvg.Node(i), To: tvg.Node((i + 1) % n), Label: 'a',
			Presence: tvg.NewTimeSet(times...),
			Latency:  tvg.ConstLatency(1),
		})
	}
	c, err := tvg.Compile(g, horizon)
	if err != nil {
		t.Fatal(err)
	}
	var st obs.SweepStats
	AllForemostStats(c, BoundedWait(100), 0, 2, 0, &st)
	if st.SparseFallbacks.Value() != st.Blocks.Value() {
		t.Fatalf("SparseFallbacks = %d, want one per block (%d)", st.SparseFallbacks.Value(), st.Blocks.Value())
	}
}
