package engine

import (
	"context"
	"fmt"
	"runtime"
	"testing"
)

// benchSpec is a markov sweep sized so one run takes long enough for the
// pool to matter but short enough to benchmark comfortably.
func benchSpec(workers int) ScenarioSpec {
	return ScenarioSpec{
		Graph: GraphSpec{
			Model: "markov", Nodes: 32, Birth: 0.02, Death: 0.5, Horizon: 120,
		},
		Modes:      []string{"nowait", "wait:2", "wait:8", "wait"},
		Messages:   48,
		Replicates: 2,
		Seed:       2012,
		Workers:    workers,
	}
}

// workerCounts is the deduplicated benchmark grid: sequential, a fixed
// 4-wide pool (the speedup reference on multi-core hosts) and the full
// machine width.
func workerCounts() []int {
	counts := []int{1}
	for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
		if w > counts[len(counts)-1] {
			counts = append(counts, w)
		}
	}
	return counts
}

// BenchmarkEngineWorkers compares sequential and parallel batch runs of
// the same markov sweep. The schedule cache is warmed outside the timer
// so the benchmark isolates the fan-out itself.
func BenchmarkEngineWorkers(b *testing.B) {
	for _, workers := range workerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e := New(Options{})
			spec := benchSpec(workers)
			if _, err := e.Run(context.Background(), spec); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(context.Background(), spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineColdCache measures a full run including graph generation
// and schedule compilation (every iteration misses the cache).
func BenchmarkEngineColdCache(b *testing.B) {
	e := New(Options{CacheSize: 1})
	spec := benchSpec(runtime.GOMAXPROCS(0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec.Seed = int64(i + 1)
		if _, err := e.Run(context.Background(), spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineThroughput is the end-to-end replicate ledger
// benchmark (BENCH_genstream.json): replicates/sec for a cold-cache
// batch run — scenario generation (streamed into pooled builders),
// simulation fan-out and aggregation all included. Every iteration
// shifts the seed so each replicate regenerates; the pertick and
// skipsampling variants differ only in the generator's sampling
// strategy (see GraphSpec.SkipSampling).
func BenchmarkEngineThroughput(b *testing.B) {
	for _, variant := range []struct {
		name string
		skip bool
	}{{"pertick", false}, {"skipsampling", true}} {
		b.Run(variant.name, func(b *testing.B) {
			e := New(Options{CacheSize: 1})
			spec := ScenarioSpec{
				Graph: GraphSpec{
					Model: "markov", Nodes: 64, Birth: 0.01, Death: 0.5,
					Horizon: 150, SkipSampling: variant.skip,
				},
				Modes:      []string{"nowait", "wait:4", "wait"},
				Messages:   16,
				Replicates: 4,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				spec.Seed = int64(i + 1) // every replicate regenerates
				if _, err := e.Run(context.Background(), spec); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N*spec.Replicates)/b.Elapsed().Seconds(), "replicates/sec")
		})
	}
}
