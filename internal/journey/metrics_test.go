package journey

import (
	"testing"

	"tvgwait/internal/tvg"
)

func ringGraph(t *testing.T, n int) *tvg.Compiled {
	t.Helper()
	g := tvg.New()
	g.AddNodes(n)
	for i := 0; i < n; i++ {
		g.MustAddEdge(tvg.Edge{
			From: tvg.Node(i), To: tvg.Node((i + 1) % n), Label: 'a',
			Presence: tvg.Always{}, Latency: tvg.ConstLatency(1),
		})
	}
	c, err := tvg.Compile(g, 3*tvg.Time(n))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTemporalEccentricityRing(t *testing.T) {
	c := ringGraph(t, 5)
	for _, mode := range []Mode{NoWait(), Wait()} {
		ecc, ok := TemporalEccentricity(c, mode, 0, 0)
		if !ok || ecc != 4 {
			t.Errorf("mode %s: eccentricity = %d, %v; want 4", mode, ecc, ok)
		}
	}
	// Eccentricity is shift-invariant on an always-present graph.
	ecc, ok := TemporalEccentricity(c, Wait(), 0, 3)
	if !ok || ecc != 4 {
		t.Errorf("shifted eccentricity = %d, %v; want 4", ecc, ok)
	}
}

func TestTemporalDiameterRing(t *testing.T) {
	c := ringGraph(t, 4)
	d, ok := TemporalDiameter(c, NoWait(), 0)
	if !ok || d != 3 {
		t.Errorf("diameter = %d, %v; want 3", d, ok)
	}
}

func TestTemporalMetricsDisconnected(t *testing.T) {
	// Ferry graph: node c has no out-edges, so no eccentricity from it and
	// no diameter.
	g := tvg.New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.AddNode("c")
	g.MustAddEdge(tvg.Edge{From: a, To: b, Label: 'x', Presence: tvg.NewTimeSet(5), Latency: tvg.ConstLatency(1)})
	c, err := tvg.Compile(g, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := TemporalEccentricity(c, Wait(), a, 0); ok {
		t.Error("eccentricity should be undefined (c unreachable)")
	}
	if _, ok := TemporalDiameter(c, Wait(), 0); ok {
		t.Error("diameter should be undefined")
	}
	// Invalid inputs.
	if _, ok := TemporalEccentricity(c, Wait(), tvg.Node(9), 0); ok {
		t.Error("invalid source should fail")
	}
	var invalid Mode
	if _, ok := TemporalEccentricity(c, invalid, a, 0); ok {
		t.Error("invalid mode should fail")
	}
}

// TestDiameterShrinksWithWaiting: on a schedule where edges appear in the
// "wrong" order for direct traversal, waiting makes the network usable.
func TestDiameterShrinksWithWaiting(t *testing.T) {
	// Path 0 -> 1 -> 2 where the second edge appears before the first:
	// e1: 1->2 at times {1, 9}; e0: 0->1 at time {4}.
	g := tvg.New()
	n0 := g.AddNode("n0")
	n1 := g.AddNode("n1")
	n2 := g.AddNode("n2")
	// Backward edges so every node can reach every other eventually.
	g.MustAddEdge(tvg.Edge{From: n0, To: n1, Label: 'a', Presence: tvg.NewTimeSet(4), Latency: tvg.ConstLatency(1)})
	g.MustAddEdge(tvg.Edge{From: n1, To: n2, Label: 'a', Presence: tvg.NewTimeSet(1, 9), Latency: tvg.ConstLatency(1)})
	g.MustAddEdge(tvg.Edge{From: n2, To: n0, Label: 'a', Presence: tvg.NewTimeSet(0, 2, 5, 11), Latency: tvg.ConstLatency(1)})
	g.MustAddEdge(tvg.Edge{From: n1, To: n0, Label: 'a', Presence: tvg.NewTimeSet(6), Latency: tvg.ConstLatency(1)})
	g.MustAddEdge(tvg.Edge{From: n2, To: n1, Label: 'a', Presence: tvg.NewTimeSet(0, 7), Latency: tvg.ConstLatency(1)})
	g.MustAddEdge(tvg.Edge{From: n0, To: n2, Label: 'a', Presence: tvg.NewTimeSet(12), Latency: tvg.ConstLatency(1)})
	c, err := tvg.Compile(g, 14)
	if err != nil {
		t.Fatal(err)
	}
	dWait, okWait := TemporalDiameter(c, Wait(), 0)
	if !okWait {
		t.Fatal("wait diameter should be defined")
	}
	if _, okNo := TemporalDiameter(c, NoWait(), 0); okNo {
		t.Error("nowait diameter should be undefined on this schedule")
	}
	if dWait <= 0 {
		t.Errorf("wait diameter = %d", dWait)
	}
}
