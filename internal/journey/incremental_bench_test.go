package journey

import (
	"testing"

	"tvgwait/internal/obs"
	"tvgwait/internal/tvg"
)

// Incremental benchmarks: what one live update costs. The acceptance
// claim (BENCH_incremental.json) is that appending ≤1% of the contacts
// and resuming the checkpointed sweep beats recomputing from scratch by
// ≥10× per update at N=256 — for the foremost matrix and for the K=8
// spectrum ladder alike, with bit-identical results (pinned by the
// differential suite in checkpoint_test.go).
//
// The resume benchmarks replay the live-fill regime the engine's
// /contacts pipeline produces: the markov256 stream is partitioned into
// one batch per departure tick past tick 50 (~1% of the ~43k contacts
// each), and every timed iteration appends the next batch and resumes
// the same checkpoint — AppendContacts cost included, because a live
// update pays it. When the chain exhausts the stream, the prefix
// checkpoint is rebuilt off the clock and the chain restarts.

// incrementalChain partitions the markov256 stream at every departure
// tick past `split`: batches[0] is the prefix, every later batch one
// suffix tick. Chains cannot share a prefix set — a second append from
// the same parent is a lineage sibling and Extends rejects it — so the
// returned build constructs a FRESH prefix per chain.
func incrementalChain(b *testing.B, split tvg.Time) (func() *tvg.ContactSet, [][]tvg.ContactRecord) {
	b.Helper()
	full := markov256(b)
	recs := recordsOf(full)
	cuts := []tvg.Time{split}
	for t := split + 1; t < full.Horizon(); t++ {
		cuts = append(cuts, t)
	}
	all := partitionByTicks(recs, cuts)
	prefixRecs := all[0]
	nodes, horizon := full.Graph().NumNodes(), full.Horizon()
	build := func() *tvg.ContactSet {
		prefix, err := emptySet(b, nodes, horizon).AppendContacts(prefixRecs)
		if err != nil {
			b.Fatal(err)
		}
		return prefix
	}
	return build, all[1:]
}

// BenchmarkIncrementalColdForemost256 is the full-recompute comparator:
// what every live update would cost without checkpoints — a cold
// checkpointed sweep of the whole N=256 stream per update. No-wait mode:
// under unbounded waiting the sparse markov256 stream saturates within
// ~20 ticks and the early-exit makes the cold sweep artificially cheap;
// no-wait reachability keeps evolving across the whole window, which is
// exactly the regime where recomputing per update hurts.
func BenchmarkIncrementalColdForemost256(b *testing.B) {
	c := markov256(b)
	var st obs.SweepStats
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, _, err := AllForemostCheckpointed(c, NoWait(), 0, 1, 0, &st)
		if err != nil {
			b.Fatal(err)
		}
		if m.ReachablePairs() == 0 {
			b.Fatal("no-wait sweep reached no pairs")
		}
	}
}

// BenchmarkIncrementalResumeForemost256 measures one live update on the
// foremost matrix: append the next ~1% departure-tick batch and resume
// the checkpoint. The acceptance target is ≥10× under
// BenchmarkIncrementalColdForemost256.
func BenchmarkIncrementalResumeForemost256(b *testing.B) {
	buildPrefix, batches := incrementalChain(b, 50)
	var st obs.SweepStats
	rebuild := func() (*tvg.ContactSet, *SweepCheckpoint) {
		prefix := buildPrefix()
		_, ck, err := AllForemostCheckpointed(prefix, NoWait(), 0, 1, 0, &st)
		if err != nil {
			b.Fatal(err)
		}
		return prefix, ck
	}
	cur, ck := rebuild()
	next := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if next == len(batches) {
			b.StopTimer()
			cur, ck = rebuild()
			next = 0
			b.StartTimer()
		}
		c2, err := cur.AppendContacts(batches[next])
		if err != nil {
			b.Fatal(err)
		}
		next++
		if _, err := ck.AllForemost(c2, 1, &st); err != nil {
			b.Fatal(err)
		}
		cur = c2
	}
}

// BenchmarkIncrementalColdSpectrum256 is the full-recompute comparator
// for the K=8 ladder: a cold checkpointed spectrum sweep per update.
func BenchmarkIncrementalColdSpectrum256(b *testing.B) {
	c := markov256(b)
	ladder := benchLadder8(b)
	var st obs.SweepStats
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, _, err := WaitSpectrumCheckpointed(c, ladder, 0, 1, 0, &st)
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := res.FirstConnected(); !ok {
			b.Fatal("benchmark network must be connected at some rung")
		}
	}
}

// BenchmarkIncrementalResumeSpectrum256 measures one live update on the
// whole K=8 spectrum ladder: append the next ~1% batch and resume —
// all eight rung matrices refreshed by a single suffix replay. The
// acceptance target is ≥10× under BenchmarkIncrementalColdSpectrum256.
func BenchmarkIncrementalResumeSpectrum256(b *testing.B) {
	buildPrefix, batches := incrementalChain(b, 50)
	ladder := benchLadder8(b)
	var st obs.SweepStats
	rebuild := func() (*tvg.ContactSet, *SweepCheckpoint) {
		prefix := buildPrefix()
		_, ck, err := WaitSpectrumCheckpointed(prefix, ladder, 0, 1, 0, &st)
		if err != nil {
			b.Fatal(err)
		}
		return prefix, ck
	}
	cur, ck := rebuild()
	next := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if next == len(batches) {
			b.StopTimer()
			cur, ck = rebuild()
			next = 0
			b.StartTimer()
		}
		c2, err := cur.AppendContacts(batches[next])
		if err != nil {
			b.Fatal(err)
		}
		next++
		if _, err := ck.WaitSpectrum(c2, 1, &st); err != nil {
			b.Fatal(err)
		}
		cur = c2
	}
}
