package engine

import (
	"container/list"
	"sync"

	"tvgwait/internal/tvg"
)

// scheduleCache is a bounded LRU of compiled contact sets keyed by
// GraphSpec.key. Contact sets are read-only after construction, so a
// cached pointer can be shared by any number of concurrent workers.
//
// Each entry owns a sync.Once: concurrent requests for the same key
// build the contact set exactly once and everyone blocks on that build
// rather than duplicating it (the map lock is never held while
// generating or compiling a graph).
type scheduleCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used; values are *cacheEntry
	m   map[string]*list.Element
}

type cacheEntry struct {
	key  string
	once sync.Once
	c    *tvg.ContactSet
	err  error
}

func newScheduleCache(capacity int) *scheduleCache {
	if capacity < 1 {
		capacity = 1
	}
	return &scheduleCache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

// get returns the contact set for key, building it with build on a miss.
// A failed build is evicted so it does not pin a capacity slot.
func (sc *scheduleCache) get(key string, build func() (*tvg.ContactSet, error)) (*tvg.ContactSet, error) {
	sc.mu.Lock()
	el, ok := sc.m[key]
	if ok {
		sc.ll.MoveToFront(el)
	} else {
		el = sc.ll.PushFront(&cacheEntry{key: key})
		sc.m[key] = el
		for sc.ll.Len() > sc.cap {
			oldest := sc.ll.Back()
			sc.ll.Remove(oldest)
			delete(sc.m, oldest.Value.(*cacheEntry).key)
		}
	}
	entry := el.Value.(*cacheEntry)
	sc.mu.Unlock()

	entry.once.Do(func() {
		entry.c, entry.err = build()
	})
	if entry.err != nil {
		sc.mu.Lock()
		if el, ok := sc.m[key]; ok && el.Value.(*cacheEntry) == entry {
			sc.ll.Remove(el)
			delete(sc.m, key)
		}
		sc.mu.Unlock()
	}
	return entry.c, entry.err
}

// len reports the number of cached entries (for tests).
func (sc *scheduleCache) len() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.ll.Len()
}
