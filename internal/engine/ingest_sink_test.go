package engine

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"tvgwait/internal/tvg"
)

// recordingSink is a scripted IngestSink: it logs every call in order,
// counts wait invocations, and can veto or fail waits on demand.
type recordingSink struct {
	mu      sync.Mutex
	calls   []string
	waits   int
	vetoErr error // returned from the next sink call, then cleared
	waitErr error // returned by every wait
}

func (rs *recordingSink) note(call string) error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if err := rs.vetoErr; err != nil {
		rs.vetoErr = nil
		return err
	}
	rs.calls = append(rs.calls, call)
	return nil
}

func (rs *recordingSink) wait() error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.waits++
	return rs.waitErr
}

func (rs *recordingSink) StreamCreated(name string, set *tvg.ContactSet) (func() error, error) {
	if err := rs.note(fmt.Sprintf("create %s n%d h%d", name, set.Graph().NumNodes(), set.Horizon())); err != nil {
		return nil, err
	}
	return rs.wait, nil
}

func (rs *recordingSink) BatchAppended(name string, recs []tvg.ContactRecord, set *tvg.ContactSet) (func() error, error) {
	if err := rs.note(fmt.Sprintf("append %s +%d rev%d", name, len(recs), set.Revision())); err != nil {
		return nil, err
	}
	return rs.wait, nil
}

func (rs *recordingSink) snapshot() ([]string, int) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return append([]string(nil), rs.calls...), rs.waits
}

// TestIngestSinkOrdering pins the sink contract's happy path: every
// create and append reaches the sink exactly once, in apply order, with
// the revision it produced, and every returned wait is invoked before
// the call returns (ack-after-durable).
func TestIngestSinkOrdering(t *testing.T) {
	sink := &recordingSink{}
	e := New(Options{Workers: 2, Ingest: sink})
	defer e.Close()
	if _, err := e.CreateStream("live", 6, 50); err != nil {
		t.Fatal(err)
	}
	// Idempotent re-create must NOT reach the sink: nothing changed.
	if _, err := e.CreateStream("live", 6, 50); err != nil {
		t.Fatal(err)
	}
	for i, batch := range streamBatches(11, 6, 50, 3) {
		if _, err := e.AppendStream("live", batch); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	calls, waits := sink.snapshot()
	if len(calls) == 0 || calls[0] != "create live n6 h50" {
		t.Fatalf("sink saw %v", calls)
	}
	for i, call := range calls[1:] {
		if !strings.HasPrefix(call, "append live ") || !strings.HasSuffix(call, fmt.Sprintf("rev%d", i+1)) {
			t.Fatalf("call %d out of order: %v", i+1, calls)
		}
	}
	if waits != len(calls) {
		t.Fatalf("%d sink calls but %d durability waits", len(calls), waits)
	}
	// Empty batches change nothing and must not reach the sink.
	before := len(calls)
	if _, err := e.Ingest(IngestRequest{Stream: "live"}); err != nil {
		t.Fatal(err)
	}
	if calls, _ := sink.snapshot(); len(calls) != before {
		t.Fatalf("empty ingest reached the sink: %v", calls[before:])
	}
}

// TestIngestSinkVeto pins the rollback half of the contract: a sink
// error suppresses the change entirely — a vetoed create leaves no
// stream, a vetoed append leaves the prior revision — and the veto
// surfaces as an internal error, not a spec error.
func TestIngestSinkVeto(t *testing.T) {
	boom := errors.New("disk on fire")
	sink := &recordingSink{vetoErr: boom}
	e := New(Options{Workers: 2, Ingest: sink})
	defer e.Close()
	_, err := e.CreateStream("live", 6, 50)
	if !errors.Is(err, boom) {
		t.Fatalf("want veto, got %v", err)
	}
	if errors.Is(err, ErrInvalidSpec) {
		t.Fatal("veto surfaced as a spec error")
	}
	if _, ok := e.StreamSet("live"); ok {
		t.Fatal("vetoed create left the stream registered")
	}
	// The veto cleared; the retry succeeds and the stream works.
	if _, err := e.CreateStream("live", 6, 50); err != nil {
		t.Fatal(err)
	}
	batches := streamBatches(12, 6, 50, 2)
	cur, err := e.AppendStream("live", batches[0])
	if err != nil {
		t.Fatal(err)
	}
	sink.mu.Lock()
	sink.vetoErr = boom
	sink.mu.Unlock()
	if _, err := e.AppendStream("live", batches[1]); !errors.Is(err, boom) {
		t.Fatalf("want veto, got %v", err)
	}
	got, _ := e.StreamSet("live")
	if got != cur {
		t.Fatalf("vetoed append published revision %d", got.Revision())
	}
	// And again: the stream is intact, the retry lands on the same watermark.
	if _, err := e.AppendStream("live", batches[1]); err != nil {
		t.Fatalf("retry after veto: %v", err)
	}
}

// TestIngestSinkWaitError pins the fsync-failure semantics: the change
// IS published (the log accepted it; only durability is in doubt) but
// the caller gets an error, so the client is never acked for a batch
// that might not survive a crash.
func TestIngestSinkWaitError(t *testing.T) {
	lost := errors.New("fsync: I/O error")
	sink := &recordingSink{waitErr: lost}
	e := New(Options{Workers: 2, Ingest: sink})
	defer e.Close()
	if _, err := e.CreateStream("live", 6, 50); !errors.Is(err, lost) {
		t.Fatalf("want wait failure, got %v", err)
	}
	cur, ok := e.StreamSet("live")
	if !ok {
		t.Fatal("logged create was not published")
	}
	batch := streamBatches(13, 6, 50, 1)[0]
	if _, err := e.AppendStream("live", batch); !errors.Is(err, lost) {
		t.Fatalf("want wait failure, got %v", err)
	}
	if got, _ := e.StreamSet("live"); got == cur {
		t.Fatal("logged append was not published")
	}
}

// TestInstallStream pins the recovery entry point: installed sets are
// served as-is, bypass the sink, and later appends flow through it
// against the installed watermark.
func TestInstallStream(t *testing.T) {
	// Build a recovered set out-of-band.
	donor := New(Options{Workers: 1})
	set, err := donor.CreateStream("x", 6, 50)
	if err != nil {
		t.Fatal(err)
	}
	batches := streamBatches(14, 6, 50, 3)
	for _, b := range batches[:2] {
		if set, err = donor.AppendStream("x", b); err != nil {
			t.Fatal(err)
		}
	}
	donor.Close()

	sink := &recordingSink{}
	e := New(Options{Workers: 2, Ingest: sink})
	defer e.Close()
	if err := e.InstallStream("live", set); err != nil {
		t.Fatal(err)
	}
	if calls, _ := sink.snapshot(); len(calls) != 0 {
		t.Fatalf("install reached the sink: %v", calls)
	}
	got, ok := e.StreamSet("live")
	if !ok || got != set {
		t.Fatal("installed set not served verbatim")
	}
	// Install over a live stream is refused.
	if err := e.InstallStream("live", set); err == nil {
		t.Fatal("double install accepted")
	}
	// A post-install append continues the stream through the sink.
	if _, err := e.AppendStream("live", batches[2]); err != nil {
		t.Fatal(err)
	}
	calls, _ := sink.snapshot()
	if len(calls) != 1 || !strings.HasPrefix(calls[0], "append live ") {
		t.Fatalf("post-install append saw %v", calls)
	}
	if names := e.StreamNames(); len(names) != 1 || names[0] != "live" {
		t.Fatalf("StreamNames = %v", names)
	}
}
