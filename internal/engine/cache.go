package engine

import (
	"container/list"
	"sync"

	"tvgwait/internal/tvg"
)

// onceCache is a bounded LRU of immutable values keyed by string. The
// engine uses two instances: the compiled-schedule cache (contact sets
// are read-only after construction, so a cached pointer can be shared
// by any number of concurrent workers) and the per-mode metrics cache.
//
// Each entry owns a sync.Once: concurrent requests for the same key
// build the value exactly once and everyone blocks on that build rather
// than duplicating it (the map lock is never held while building).
type onceCache[V any] struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used; values are *cacheEntry[V]
	m   map[string]*list.Element
}

type cacheEntry[V any] struct {
	key  string
	once sync.Once
	v    V
	err  error
}

func newOnceCache[V any](capacity int) *onceCache[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &onceCache[V]{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

// get returns the value for key, building it with build on a miss. A
// failed build is evicted so it does not pin a capacity slot.
func (sc *onceCache[V]) get(key string, build func() (V, error)) (V, error) {
	sc.mu.Lock()
	el, ok := sc.m[key]
	if ok {
		sc.ll.MoveToFront(el)
	} else {
		el = sc.ll.PushFront(&cacheEntry[V]{key: key})
		sc.m[key] = el
		for sc.ll.Len() > sc.cap {
			oldest := sc.ll.Back()
			sc.ll.Remove(oldest)
			delete(sc.m, oldest.Value.(*cacheEntry[V]).key)
		}
	}
	entry := el.Value.(*cacheEntry[V])
	sc.mu.Unlock()

	entry.once.Do(func() {
		entry.v, entry.err = build()
	})
	if entry.err != nil {
		sc.mu.Lock()
		if el, ok := sc.m[key]; ok && el.Value.(*cacheEntry[V]) == entry {
			sc.ll.Remove(el)
			delete(sc.m, key)
		}
		sc.mu.Unlock()
	}
	return entry.v, entry.err
}

// len reports the number of cached entries (for tests).
func (sc *onceCache[V]) len() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.ll.Len()
}

// scheduleCache is the compiled-schedule instance, keyed by
// GraphSpec.key.
type scheduleCache = onceCache[*tvg.ContactSet]

func newScheduleCache(capacity int) *scheduleCache {
	return newOnceCache[*tvg.ContactSet](capacity)
}
