package engine

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"tvgwait/internal/journey"
	"tvgwait/internal/tvg"
)

func metricsGraph() GraphSpec {
	return GraphSpec{Model: "markov", Nodes: 14, Birth: 0.05, Death: 0.5, Horizon: 60}
}

// TestMetricsMatchesJourney pins the engine's metric rows to the
// journey-level implementations on the same compiled schedule.
func TestMetricsMatchesJourney(t *testing.T) {
	e := New(Options{})
	req := MetricsRequest{Graph: metricsGraph(), Seed: 5, Modes: []string{"nowait", "wait:4", "wait"}}
	rep, err := e.Metrics(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	c, err := e.ContactSet(req.Graph, req.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Nodes != 14 || rep.Contacts != c.NumContacts() || len(rep.Modes) != 3 {
		t.Fatalf("report shape wrong: %+v", rep)
	}
	modes := []journey.Mode{journey.NoWait(), journey.BoundedWait(4), journey.Wait()}
	for i, mode := range modes {
		mm := rep.Modes[i]
		if mm.Mode != mode.String() {
			t.Fatalf("mode %d renders %q, want %q", i, mm.Mode, mode.String())
		}
		if got := journey.TemporallyConnected(c, mode, 0); got != mm.Connected {
			t.Errorf("%s: connected = %v, journey says %v", mm.Mode, mm.Connected, got)
		}
		d, ok := journey.TemporalDiameter(c, mode, 0)
		if ok != mm.Connected {
			t.Errorf("%s: diameter defined = %v, connected = %v", mm.Mode, ok, mm.Connected)
		}
		if ok && mm.Diameter != d {
			t.Errorf("%s: diameter = %d, journey says %d", mm.Mode, mm.Diameter, d)
		}
		if !ok && mm.Diameter != -1 {
			t.Errorf("%s: unconnected diameter = %d, want -1", mm.Mode, mm.Diameter)
		}
		am := journey.AllForemost(c, mode, 0)
		if got := am.ReachablePairs(); got != mm.ReachablePairs {
			t.Errorf("%s: reachable pairs = %d, journey says %d", mm.Mode, mm.ReachablePairs, got)
		}
		if mm.TotalPairs != 14*14 {
			t.Errorf("%s: total pairs = %d, want %d", mm.Mode, mm.TotalPairs, 14*14)
		}
		if !mm.Connected {
			continue
		}
		// Histogram totals the sources; quantiles bracket the diameter.
		if mm.EccMax != mm.Diameter || mm.EccMin > mm.EccP50 || mm.EccP50 > mm.EccP90 || mm.EccP90 > mm.EccMax {
			t.Errorf("%s: eccentricity summary out of order: %+v", mm.Mode, mm)
		}
		total := 0
		for _, cnt := range mm.EccHistogram {
			total += cnt
		}
		if total != 14 {
			t.Errorf("%s: histogram sums to %d sources, want 14", mm.Mode, total)
		}
		for src := tvg.Node(0); src < 14; src++ {
			ecc, ok := journey.TemporalEccentricity(c, mode, src, 0)
			if !ok {
				t.Fatalf("%s: connected graph has undefined eccentricity at %d", mm.Mode, src)
			}
			if mm.EccHistogram[ecc] == 0 {
				t.Errorf("%s: histogram missing eccentricity %d of source %d", mm.Mode, ecc, src)
			}
		}
	}
}

// TestMetricsWaitDominatesNoWait checks the paper-level shape: waiting
// can only enlarge the reachable relation.
func TestMetricsWaitDominatesNoWait(t *testing.T) {
	e := New(Options{})
	rep, err := e.Metrics(context.Background(), MetricsRequest{Graph: metricsGraph(), Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Modes) != 2 {
		t.Fatalf("default modes = %d rows, want 2 (nowait, wait)", len(rep.Modes))
	}
	nowait, wait := rep.Modes[0], rep.Modes[1]
	if nowait.Mode != "nowait" || wait.Mode != "wait" {
		t.Fatalf("default mode order wrong: %q, %q", nowait.Mode, wait.Mode)
	}
	if wait.ReachablePairs < nowait.ReachablePairs {
		t.Errorf("wait reaches %d pairs, fewer than nowait's %d", wait.ReachablePairs, nowait.ReachablePairs)
	}
}

// TestMetricsCaching: a repeated single-mode request must hit the
// per-mode metrics LRU (keyed by seed, t0 and mode), while a multi-mode
// request rides the spectrum path and pins ONE spectra entry for the
// whole ladder instead of one metrics entry per mode.
func TestMetricsCaching(t *testing.T) {
	e := New(Options{})
	req := MetricsRequest{Graph: metricsGraph(), Seed: 1, Modes: []string{"wait"}}
	if _, err := e.Metrics(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if got := e.metrics.len(); got != 1 {
		t.Fatalf("after first request cache holds %d rows, want 1", got)
	}
	if _, err := e.Metrics(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if got := e.metrics.len(); got != 1 {
		t.Fatalf("repeat request grew the cache to %d rows", got)
	}
	req.T0 = 3
	if _, err := e.Metrics(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	req.Seed = 2
	if _, err := e.Metrics(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if got := e.metrics.len(); got != 3 {
		t.Fatalf("cache holds %d rows, want 3 (wait@t0=0, wait@t0=3, seed2)", got)
	}
	// Multi-mode: one spectra entry for the ladder, no new per-mode rows.
	req.Modes = []string{"wait", "nowait"}
	if _, err := e.Metrics(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if got := e.metrics.len(); got != 3 {
		t.Fatalf("multi-mode request grew the per-mode cache to %d rows", got)
	}
	if got := e.spectra.len(); got != 1 {
		t.Fatalf("multi-mode request left %d spectra entries, want 1", got)
	}
	// A repeat — and a reordered duplicate-bearing ladder normalizing to
	// the same rungs — hits the same entry.
	req.Modes = []string{"nowait", "wait", "wait:0"}
	if _, err := e.Metrics(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if got := e.spectra.len(); got != 1 {
		t.Fatalf("normalized-equal ladder added a spectra entry (%d total)", got)
	}
}

// TestMetricsValidation: spec mistakes surface as ErrInvalidSpec.
func TestMetricsValidation(t *testing.T) {
	e := New(Options{})
	cases := []MetricsRequest{
		{Graph: GraphSpec{Model: "nope", Nodes: 8, Horizon: 10}},
		{Graph: metricsGraph(), Modes: []string{"bogus"}},
		{Graph: metricsGraph(), T0: -1},
		{Graph: metricsGraph(), T0: 1000},
	}
	for i, req := range cases {
		if _, err := e.Metrics(context.Background(), req); !errors.Is(err, ErrInvalidSpec) {
			t.Errorf("case %d: err = %v, want ErrInvalidSpec", i, err)
		}
	}
}

// TestMetricsHonoursCancellation: a cancelled context aborts between
// modes.
func TestMetricsHonoursCancellation(t *testing.T) {
	e := New(Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Metrics(ctx, MetricsRequest{Graph: metricsGraph()}); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestMetricsWorkerIndependence pins the parallel-sweep contract at the
// engine level: the metrics report of a multi-block (>64 node) network
// must be identical whatever the engine's worker width, since the
// 64-source blocks write disjoint matrix rows.
func TestMetricsWorkerIndependence(t *testing.T) {
	req := MetricsRequest{
		Graph: GraphSpec{Model: "bernoulli", Nodes: 96, P: 0.02, Horizon: 60},
		Seed:  11,
		Modes: []string{"nowait", "wait:2", "wait"},
	}
	want, err := New(Options{Workers: 1}).Metrics(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 7} {
		got, err := New(Options{Workers: workers}).Metrics(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d metrics differ from workers=1:\n got %+v\nwant %+v", workers, got, want)
		}
	}
}
