package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"tvgwait/internal/engine"
	"tvgwait/internal/faultinject"
)

// testServerOpts is testServer with full control over the engine's
// options — budget, fault hook — for the degradation tests.
func testServerOpts(t *testing.T, opts engine.Options, timeout time.Duration, inflight int) (*server, *httptest.Server) {
	t.Helper()
	eng := engine.New(opts)
	t.Cleanup(eng.Close)
	srv := newServer(timeout, inflight)
	srv.attachEngine(eng)
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	return srv, ts
}

// TestThrottleCarriesRetryAfter pins the degradation ladder's 429 rung:
// a saturated server tells the client when to come back.
func TestThrottleCarriesRetryAfter(t *testing.T) {
	srv, ts := testServer(t, time.Minute, 1)
	srv.sem <- struct{}{} // occupy the only slot
	defer func() { <-srv.sem }()
	resp, err := http.Post(ts.URL+"/simulate", "application/json", strings.NewReader(simBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After header")
	}
}

// TestDrainingReturns503 pins the shutdown rung: once draining, every
// simulation request gets 503 + Retry-After, and the flag flips exactly
// the behaviour — nothing is torn down by the flag itself.
func TestDrainingReturns503(t *testing.T) {
	srv, ts := testServer(t, time.Minute, 2)
	srv.draining.Store(true)
	resp, err := http.Post(ts.URL+"/metrics", "application/json",
		strings.NewReader(`{"graph": {"model": "markov", "nodes": 8, "birth": 0.1, "death": 0.5, "horizon": 20}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After header")
	}
	srv.draining.Store(false)
	resp2, err := http.Post(ts.URL+"/metrics", "application/json",
		strings.NewReader(`{"graph": {"model": "markov", "nodes": 8, "birth": 0.1, "death": 0.5, "horizon": 20}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-drain status = %d, want 200", resp2.StatusCode)
	}
}

// TestTooLargeReturns413 pins the budget rung: a spec whose predicted
// matrix footprint exceeds the engine byte budget is answered 413, with
// the error naming the numbers, before any matrix memory is allocated.
func TestTooLargeReturns413(t *testing.T) {
	_, ts := testServerOpts(t, engine.Options{MaxCacheBytes: 1 << 20}, time.Minute, 2)
	body := `{"graph": {"model": "bernoulli", "nodes": 1024, "p": 0.001, "horizon": 100}, "modes": ["wait"]}`
	resp, err := http.Post(ts.URL+"/metrics", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-budget status = %d (%s), want 413", resp.StatusCode, msg)
	}
	if !strings.Contains(string(msg), "budget") {
		t.Errorf("413 body %q does not name the budget", msg)
	}
}

// TestValidationBeforeAdmission pins the satellite: a malformed spec is
// rejected 400 — with the offending field named — even when the server
// is fully saturated, because validation runs before the admission
// semaphore is consulted.
func TestValidationBeforeAdmission(t *testing.T) {
	srv, ts := testServer(t, time.Minute, 1)
	srv.sem <- struct{}{} // saturate: any admitted request would 429
	defer func() { <-srv.sem }()
	cases := []struct {
		path, body, field string
	}{
		{"/simulate", `{"graph": {"model": "markov", "nodes": 99999, "horizon": 10}}`, "nodes"},
		{"/metrics", `{"graph": {"model": "markov", "nodes": 8, "birth": 0.1, "death": 0.5, "horizon": 10}, "t0": -4}`, "t0"},
		{"/spectrum", `{"graph": {"model": "markov", "nodes": 8, "birth": 0.1, "death": 0.5, "horizon": 10}, "modes": ["bogus"]}`, "mode"},
		{"/journey", `{"graph": {"model": "markov", "nodes": 8, "birth": 0.1, "death": 0.5, "horizon": 10}, "mode": "wait", "src": 0, "dst": 99}`, "endpoints"},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+c.path, "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		msg, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s on saturated server: status = %d (%s), want 400 before admission", c.path, resp.StatusCode, msg)
		}
		if !strings.Contains(string(msg), c.field) {
			t.Errorf("POST %s error %q does not name field %q", c.path, msg, c.field)
		}
	}
}

// TestPanicContainment pins the 500 rung: a panicking handler is
// contained by the instrument envelope — the client gets one clean 500,
// the panic counter ticks, the in-flight gauge returns to zero and the
// server keeps answering.
func TestPanicContainment(t *testing.T) {
	srv, _ := testServer(t, time.Minute, 2)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /metrics", srv.instrument("/metrics", func(w http.ResponseWriter, r *http.Request) {
		panic("injected handler panic")
	}))
	ts := httptest.NewServer(mux)
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Post(ts.URL+"/metrics", "application/json", strings.NewReader(`{}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("panicking handler answered %d, want 500", resp.StatusCode)
		}
	}
	if got := srv.metrics.panics.Value(); got != 3 {
		t.Errorf("tvg_http_panics_total = %d, want 3", got)
	}
	if got := srv.metrics.inflight.Value(); got != 0 {
		t.Errorf("inflight gauge leaked to %d after panics", got)
	}
}

// TestNoGoroutineLeaks exercises the leak-prone paths — server
// shutdown, client-cancelled in-flight requests, slow detached builds —
// and asserts the goroutine count returns to baseline (retry window:
// detached builds are ALLOWED to finish, just not to linger).
func TestNoGoroutineLeaks(t *testing.T) {
	baseline := runtime.NumGoroutine()

	eng := engine.New(engine.Options{
		Workers:   2,
		FaultHook: faultinject.OnSite(faultinject.SiteBuild, faultinject.Sleep(50*time.Millisecond)),
	})
	srv := newServer(time.Minute, 4)
	srv.attachEngine(eng)
	ts := httptest.NewServer(srv.routes())

	body := `{"graph": {"model": "markov", "nodes": 12, "birth": 0.05, "death": 0.5, "horizon": 40}, "modes": ["wait"], "seed": 9}`
	// Cancelled in-flight requests: clients hang up while the build is
	// still sleeping in the fault hook.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
			defer cancel()
			req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/metrics", strings.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
			if resp, err := http.DefaultClient.Do(req); err == nil {
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	// One completed request so the server saw a full round trip too.
	resp, err := http.Post(ts.URL+"/metrics", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	ts.Close()
	eng.Close()
	http.DefaultClient.CloseIdleConnections()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// FuzzHandlerInputs drives the JSON endpoints with hostile bodies —
// malformed JSON, wrong shapes, oversized payloads, binary garbage —
// and asserts every answer is a clean 4xx (never a 5xx, never a hang)
// and that the server still serves a well-formed request afterwards.
func FuzzHandlerInputs(f *testing.F) {
	f.Add("/metrics", `{"graph"`)
	f.Add("/simulate", `not json at all`)
	f.Add("/journey", `{"graph": {"model": "markov", "nodes": -3, "horizon": 10}}`)
	f.Add("/spectrum", `{"graph": {"model": "markov", "nodes": 8, "horizon": 1e99}}`)
	f.Add("/metrics", `{"graph": null}`)
	f.Add("/simulate", `{"graph": {"model": "markov", "nodes": 8, "horizon": 10}, "unknown": 1}`)
	f.Add("/metrics", strings.Repeat("[", 10000))
	f.Add("/simulate", "\x00\x01\x02\xff")
	f.Add("/spectrum", `{"graph": {"model": "bernoulli", "nodes": 4096, "p": 2.0, "horizon": 1000000}}`)
	f.Add("/contacts", `{"stream": "s", "nodes": 4, "horizon": 10, "contacts": [{"from": 0, "to": 1, "dep": 2, "arr": 3}]}`)
	f.Add("/contacts", `{"stream": "s", "contacts": [{"from": 0, "to": 99, "dep": -5, "arr": -7}]}`)
	f.Add("/contacts", `{"stream": ""}`)
	f.Add("/contacts", `{"stream": "`+strings.Repeat("n", 400)+`"}`)

	eng := engine.New(engine.Options{Workers: 2, MaxCacheBytes: 1 << 20})
	defer eng.Close()
	srv := newServer(time.Second, 2)
	srv.attachEngine(eng)
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()
	good := `{"graph": {"model": "markov", "nodes": 8, "birth": 0.1, "death": 0.5, "horizon": 20}, "modes": ["wait"]}`

	f.Fuzz(func(t *testing.T, path, body string) {
		switch path {
		case "/simulate", "/journey", "/metrics", "/spectrum", "/contacts":
		default:
			path = "/metrics" // keep the fuzzer on the JSON endpoints
		}
		resp, err := http.Post(ts.URL+path, "application/octet-stream", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatalf("POST %s: transport error %v", path, err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		// Hostile input is the client's fault or over budget — never a
		// server fault. 2xx is fine when the garbage happens to parse, and
		// 504 is the deadline rung doing its job on a valid-but-expensive
		// mutation; 500/502/503 would mean the garbage broke the server.
		if resp.StatusCode >= 500 && resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("POST %s %q answered %d", path, body, resp.StatusCode)
		}
		// The server must remain healthy for the next well-formed request.
		ok, err := http.Post(ts.URL+"/metrics", "application/json", strings.NewReader(good))
		if err != nil {
			t.Fatalf("follow-up request failed: %v", err)
		}
		io.Copy(io.Discard, ok.Body) //nolint:errcheck
		ok.Body.Close()
		if ok.StatusCode != http.StatusOK {
			t.Fatalf("follow-up well-formed request answered %d", ok.StatusCode)
		}
	})
}

// TestOversizedBody pins the request-size guard: a body above
// maxBodyBytes is rejected 400 without buffering the whole payload.
func TestOversizedBody(t *testing.T) {
	_, ts := testServer(t, time.Minute, 2)
	big := `{"graph": {"model": "markov", "nodes": 8, "horizon": 10}, "modes": ["` +
		strings.Repeat("x", maxBodyBytes) + `"]}`
	resp, err := http.Post(ts.URL+"/simulate", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized body status = %d, want 400", resp.StatusCode)
	}
}
