package tvg

import (
	"slices"
	"strings"
	"testing"
)

// assertSameContactSet asserts two contact sets are byte-identical:
// same horizon, same contact array, same CSR indexes, and same graph
// shape (node names, edge endpoints/labels/names).
func assertSameContactSet(t *testing.T, got, want *ContactSet) {
	t.Helper()
	if got.horizon != want.horizon {
		t.Fatalf("horizon %d, want %d", got.horizon, want.horizon)
	}
	if !slices.Equal(got.contacts, want.contacts) {
		t.Fatalf("contacts differ:\n got %v\nwant %v", got.contacts, want.contacts)
	}
	if !slices.Equal(got.edgeOff, want.edgeOff) {
		t.Fatalf("edgeOff %v, want %v", got.edgeOff, want.edgeOff)
	}
	if !slices.Equal(got.outEdges, want.outEdges) {
		t.Fatalf("outEdges %v, want %v", got.outEdges, want.outEdges)
	}
	if !slices.Equal(got.outOff, want.outOff) {
		t.Fatalf("outOff %v, want %v", got.outOff, want.outOff)
	}
	if !slices.Equal(got.byTime, want.byTime) {
		t.Fatalf("byTime %v, want %v", got.byTime, want.byTime)
	}
	if !slices.Equal(got.timeOff, want.timeOff) {
		t.Fatalf("timeOff %v, want %v", got.timeOff, want.timeOff)
	}
	gg, wg := got.Graph(), want.Graph()
	if gg.NumNodes() != wg.NumNodes() || gg.NumEdges() != wg.NumEdges() {
		t.Fatalf("graph shape %d/%d nodes/edges, want %d/%d",
			gg.NumNodes(), gg.NumEdges(), wg.NumNodes(), wg.NumEdges())
	}
	for n := Node(0); int(n) < wg.NumNodes(); n++ {
		if gg.NodeName(n) != wg.NodeName(n) {
			t.Fatalf("node %d named %q, want %q", n, gg.NodeName(n), wg.NodeName(n))
		}
	}
	for id := EdgeID(0); int(id) < wg.NumEdges(); id++ {
		ge, _ := gg.Edge(id)
		we, _ := wg.Edge(id)
		if ge.From != we.From || ge.To != we.To || ge.Label != we.Label || ge.Name != we.Name {
			t.Fatalf("edge %d = (%d→%d %q %q), want (%d→%d %q %q)",
				id, ge.From, ge.To, ge.Label, ge.Name, we.From, we.To, we.Label, we.Name)
		}
	}
}

// buildReference constructs the Graph→Compile equivalent of a streamed
// edge list: TimeSet presences plus a latency function replaying the
// streamed arrivals.
func buildReference(t *testing.T, nodes int, horizon Time, edges []refEdge) *ContactSet {
	t.Helper()
	g := New()
	g.AddNodes(nodes)
	for _, e := range edges {
		lat := make(map[Time]Time, len(e.deps))
		for i, dep := range e.deps {
			lat[dep] = e.arrs[i] - dep
		}
		g.MustAddEdge(Edge{
			From: e.from, To: e.to, Label: e.label,
			Presence: NewTimeSet(e.deps...),
			Latency: LatencyFunc(func(t Time) Time {
				if l, ok := lat[t]; ok {
					return l
				}
				return 1
			}),
		})
	}
	cs, err := NewContactSet(g, horizon)
	if err != nil {
		t.Fatalf("reference compile: %v", err)
	}
	return cs
}

type refEdge struct {
	from, to Node
	label    Symbol
	deps     []Time
	arrs     []Time
}

func streamEdges(b *Builder, nodes int, horizon Time, edges []refEdge) {
	b.Reset(nodes, horizon)
	for _, e := range edges {
		b.StartEdge(e.from, e.to, e.label)
		for i, dep := range e.deps {
			b.Append(dep, e.arrs[i])
		}
	}
}

func TestBuilderMatchesCompile(t *testing.T) {
	edges := []refEdge{
		{from: 0, to: 1, label: 'a', deps: []Time{0, 2, 5}, arrs: []Time{1, 4, 6}},
		{from: 1, to: 2, label: 'b', deps: []Time{1, 3}, arrs: []Time{2, 9}},
		{from: 2, to: 2, label: 'c', deps: []Time{4}, arrs: []Time{5}}, // self-loop
		{from: 0, to: 1, label: 'a'},                                   // empty edge: kept, with an empty range
		{from: 3, to: 0, label: 'd', deps: []Time{0, 1, 2, 3}, arrs: []Time{7, 2, 8, 4}},
	}
	const nodes, horizon = 4, 6
	b := NewBuilder()
	streamEdges(b, nodes, horizon, edges)
	got, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	assertSameContactSet(t, got, buildReference(t, nodes, horizon, edges))

	// The views round-trip the streamed schedule within the horizon.
	for id, e := range edges {
		ge, _ := got.Graph().Edge(EdgeID(id))
		for tick := Time(0); tick <= horizon; tick++ {
			i := slices.Index(e.deps, tick)
			if present := ge.Presence.Present(tick); present != (i >= 0) {
				t.Fatalf("edge %d Present(%d) = %v, want %v", id, tick, present, i >= 0)
			}
			if i >= 0 {
				if l := ge.Latency.Crossing(tick); l != e.arrs[i]-tick {
					t.Fatalf("edge %d Crossing(%d) = %d, want %d", id, tick, l, e.arrs[i]-tick)
				}
			}
		}
		if ge.Presence.Present(horizon + 1) {
			t.Fatalf("edge %d present beyond the horizon", id)
		}
	}
	if err := got.Graph().Validate(horizon); err != nil {
		t.Fatalf("built graph fails validation: %v", err)
	}
}

func TestBuilderEmpty(t *testing.T) {
	b := NewBuilder()
	b.Reset(3, 0)
	got, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	assertSameContactSet(t, got, buildReference(t, 3, 0, nil))
	if got.NumContacts() != 0 || got.Graph().NumNodes() != 3 {
		t.Fatalf("empty build: %d contacts, %d nodes", got.NumContacts(), got.Graph().NumNodes())
	}
}

func TestBuilderReuse(t *testing.T) {
	b := NewBuilder()
	first := []refEdge{{from: 0, to: 1, label: 'a', deps: []Time{0, 3}, arrs: []Time{2, 4}}}
	streamEdges(b, 2, 5, first)
	cs1, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	snapshot := slices.Clone(cs1.Contacts())

	// A bigger second build must not disturb the first result.
	second := []refEdge{
		{from: 4, to: 0, label: 'z', deps: []Time{1, 2, 3, 4, 5, 6, 7}, arrs: []Time{2, 3, 4, 5, 6, 7, 8}},
		{from: 2, to: 3, label: 'y', deps: []Time{0}, arrs: []Time{10}},
	}
	streamEdges(b, 5, 8, second)
	cs2, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	assertSameContactSet(t, cs2, buildReference(t, 5, 8, second))
	assertSameContactSet(t, cs1, buildReference(t, 2, 5, first))
	if !slices.Equal(snapshot, cs1.Contacts()) {
		t.Fatal("reusing the builder mutated an earlier ContactSet")
	}

	// Finalize consumed the build: a second Finalize without Reset fails.
	if _, err := b.Finalize(); err == nil {
		t.Fatal("Finalize without a fresh Reset should fail")
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name string
		want string
		run  func(b *Builder)
	}{
		{"finalize before reset", "before Reset", func(b *Builder) {}},
		{"start before reset", "before Reset", func(b *Builder) { b.StartEdge(0, 1, 'a') }},
		{"negative nodes", "negative node count", func(b *Builder) { b.Reset(-1, 5) }},
		{"negative horizon", "negative horizon", func(b *Builder) { b.Reset(2, -1) }},
		{"append before edge", "before StartEdge", func(b *Builder) { b.Reset(2, 5); b.Append(0, 1) }},
		{"unknown node", "unknown node", func(b *Builder) { b.Reset(2, 5); b.StartEdge(0, 2, 'a') }},
		{"negative departure", "outside [0, 5]", func(b *Builder) {
			b.Reset(2, 5)
			b.StartEdge(0, 1, 'a')
			b.Append(-1, 1)
		}},
		{"departure past horizon", "outside [0, 5]", func(b *Builder) {
			b.Reset(2, 5)
			b.StartEdge(0, 1, 'a')
			b.Append(6, 7)
		}},
		{"zero latency", "latency 0 < 1", func(b *Builder) {
			b.Reset(2, 5)
			b.StartEdge(0, 1, 'a')
			b.Append(3, 3)
		}},
		{"unsorted departures", "not strictly increasing", func(b *Builder) {
			b.Reset(2, 5)
			b.StartEdge(0, 1, 'a')
			b.Append(3, 4)
			b.Append(3, 4)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder()
			tc.run(b)
			_, err := b.Finalize()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Finalize error = %v, want one containing %q", err, tc.want)
			}
		})
	}

	// A recorded error is cleared by Reset, and the first error wins.
	b := NewBuilder()
	b.Reset(2, 5)
	b.Append(0, 1) // error: no edge started
	b.StartEdge(0, 5, 'a')
	if _, err := b.Finalize(); err == nil || !strings.Contains(err.Error(), "before StartEdge") {
		t.Fatalf("first error should win, got %v", err)
	}
	b.Reset(2, 5)
	b.StartEdge(0, 1, 'a')
	b.Append(0, 1)
	if _, err := b.Finalize(); err != nil {
		t.Fatalf("Reset should clear the error state: %v", err)
	}

	// A fresh new-edge departure may restart below the previous edge's.
	b.Reset(2, 5)
	b.StartEdge(0, 1, 'a')
	b.Append(4, 5)
	b.StartEdge(1, 0, 'b')
	b.Append(0, 1)
	if _, err := b.Finalize(); err != nil {
		t.Fatalf("per-edge departure ordering should reset at StartEdge: %v", err)
	}
}
