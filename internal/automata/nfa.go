// Package automata implements the classical finite-automata substrate used
// throughout the reproduction: nondeterministic finite automata with
// ε-transitions, deterministic finite automata, subset construction,
// Moore partition-refinement minimization, product constructions,
// equivalence checking,
// bounded language enumeration and a small regular-expression compiler.
//
// Theorem 2.2 of the paper states that the languages of TVG-automata with
// waiting are exactly the regular languages; the constructions in
// internal/construct produce NFAs from TVGs (regularity witnesses) and
// TVGs from DFAs (the converse inclusion), and this package supplies the
// algorithms that compare those languages.
package automata

import (
	"fmt"
	"sort"
)

// State identifies a state of an NFA or DFA.
type State int

// NFA is a nondeterministic finite automaton with ε-transitions.
//
// States are 0..NumStates()-1. The zero value is an empty automaton with no
// states; use NewNFA or the builder methods.
type NFA struct {
	trans  []map[rune][]State // per state: symbol -> successors
	eps    [][]State          // per state: ε-successors
	start  []State
	accept []bool
}

// NewNFA returns an NFA with n states and no transitions.
func NewNFA(n int) *NFA {
	a := &NFA{
		trans:  make([]map[rune][]State, n),
		eps:    make([][]State, n),
		accept: make([]bool, n),
	}
	return a
}

// NumStates returns the number of states.
func (a *NFA) NumStates() int { return len(a.trans) }

// AddState appends a fresh state and returns it.
func (a *NFA) AddState() State {
	a.trans = append(a.trans, nil)
	a.eps = append(a.eps, nil)
	a.accept = append(a.accept, false)
	return State(len(a.trans) - 1)
}

// SetStart marks s as an initial state.
func (a *NFA) SetStart(s State) {
	for _, existing := range a.start {
		if existing == s {
			return
		}
	}
	a.start = append(a.start, s)
}

// SetAccept marks s as accepting (or not).
func (a *NFA) SetAccept(s State, accepting bool) { a.accept[s] = accepting }

// IsAccept reports whether s is accepting.
func (a *NFA) IsAccept(s State) bool { return a.accept[s] }

// Starts returns a copy of the initial-state set.
func (a *NFA) Starts() []State {
	out := make([]State, len(a.start))
	copy(out, a.start)
	return out
}

// AddTransition adds a transition from -sym-> to.
func (a *NFA) AddTransition(from State, sym rune, to State) {
	if a.trans[from] == nil {
		a.trans[from] = make(map[rune][]State)
	}
	a.trans[from][sym] = append(a.trans[from][sym], to)
}

// AddEpsilon adds an ε-transition from -> to.
func (a *NFA) AddEpsilon(from, to State) {
	a.eps[from] = append(a.eps[from], to)
}

// TransitionsFrom returns a copy of the direct successors of s on sym
// (ε-transitions are not followed).
func (a *NFA) TransitionsFrom(s State, sym rune) []State {
	ts := a.trans[s][sym]
	if len(ts) == 0 {
		return nil
	}
	return append([]State(nil), ts...)
}

// EpsilonsFrom returns a copy of the direct ε-successors of s.
func (a *NFA) EpsilonsFrom(s State) []State {
	if len(a.eps[s]) == 0 {
		return nil
	}
	return append([]State(nil), a.eps[s]...)
}

// Alphabet returns the sorted set of symbols with at least one transition.
func (a *NFA) Alphabet() []rune {
	seen := make(map[rune]bool)
	for _, m := range a.trans {
		for sym := range m {
			seen[sym] = true
		}
	}
	out := make([]rune, 0, len(seen))
	for sym := range seen {
		out = append(out, sym)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// epsClosure expands the set (given as a sorted slice) with everything
// reachable via ε-transitions, returning a sorted, deduplicated slice.
func (a *NFA) epsClosure(set []State) []State {
	seen := make(map[State]bool, len(set))
	stack := make([]State, 0, len(set))
	for _, s := range set {
		if !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range a.eps[s] {
			if !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
	}
	out := make([]State, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// step returns the ε-closed successor set of the ε-closed set on sym.
func (a *NFA) step(set []State, sym rune) []State {
	var next []State
	for _, s := range set {
		next = append(next, a.trans[s][sym]...)
	}
	return a.epsClosure(next)
}

// Accepts reports whether the NFA accepts the word.
func (a *NFA) Accepts(word string) bool {
	cur := a.epsClosure(a.start)
	for _, sym := range word {
		cur = a.step(cur, sym)
		if len(cur) == 0 {
			return false
		}
	}
	for _, s := range cur {
		if a.accept[s] {
			return true
		}
	}
	return false
}

// stateSetKey builds a map key for a sorted state set.
func stateSetKey(set []State) string {
	b := make([]byte, 0, len(set)*3)
	for _, s := range set {
		b = append(b, byte(s), byte(s>>8), byte(s>>16), byte(s>>24))
	}
	return string(b)
}

// Determinize runs the subset construction and returns an equivalent,
// complete DFA over the given alphabet. If alphabet is nil, the NFA's own
// alphabet is used. The resulting DFA always has at least one state (a sink
// if the NFA is empty).
func (a *NFA) Determinize(alphabet []rune) *DFA {
	if alphabet == nil {
		alphabet = a.Alphabet()
	}
	symIdx := make(map[rune]int, len(alphabet))
	for i, sym := range alphabet {
		symIdx[sym] = i
	}
	d := &DFA{alphabet: append([]rune(nil), alphabet...), symIdx: symIdx}

	startSet := a.epsClosure(a.start)
	index := map[string]State{}
	var sets [][]State

	intern := func(set []State) State {
		key := stateSetKey(set)
		if s, ok := index[key]; ok {
			return s
		}
		s := State(len(sets))
		index[key] = s
		sets = append(sets, set)
		acc := false
		for _, q := range set {
			if a.accept[q] {
				acc = true
				break
			}
		}
		d.accept = append(d.accept, acc)
		d.trans = append(d.trans, make([]State, len(alphabet)))
		return s
	}

	d.start = intern(startSet)
	for work := 0; work < len(sets); work++ {
		set := sets[work]
		for i, sym := range alphabet {
			next := a.step(set, sym)
			d.trans[work][i] = intern(next)
		}
	}
	return d
}

// Trim returns an equivalent NFA containing only states reachable from an
// initial state. (Co-reachability is handled by DFA minimization.)
func (a *NFA) Trim() *NFA {
	reach := make([]bool, a.NumStates())
	var stack []State
	for _, s := range a.start {
		if !reach[s] {
			reach[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		visit := func(t State) {
			if !reach[t] {
				reach[t] = true
				stack = append(stack, t)
			}
		}
		for _, t := range a.eps[s] {
			visit(t)
		}
		for _, ts := range a.trans[s] {
			for _, t := range ts {
				visit(t)
			}
		}
	}
	remap := make([]State, a.NumStates())
	n := 0
	for s := range remap {
		if reach[s] {
			remap[s] = State(n)
			n++
		} else {
			remap[s] = -1
		}
	}
	out := NewNFA(n)
	for s := 0; s < a.NumStates(); s++ {
		if !reach[s] {
			continue
		}
		ns := remap[s]
		out.accept[ns] = a.accept[s]
		for sym, ts := range a.trans[s] {
			for _, t := range ts {
				if reach[t] {
					out.AddTransition(ns, sym, remap[t])
				}
			}
		}
		for _, t := range a.eps[s] {
			if reach[t] {
				out.AddEpsilon(ns, remap[t])
			}
		}
	}
	for _, s := range a.start {
		out.SetStart(remap[s])
	}
	return out
}

// Clone returns a deep copy of the NFA.
func (a *NFA) Clone() *NFA {
	out := NewNFA(a.NumStates())
	copy(out.accept, a.accept)
	out.start = append([]State(nil), a.start...)
	for s := range a.trans {
		for sym, ts := range a.trans[s] {
			for _, t := range ts {
				out.AddTransition(State(s), sym, t)
			}
		}
		for _, t := range a.eps[s] {
			out.AddEpsilon(State(s), t)
		}
	}
	return out
}

func (a *NFA) String() string {
	return fmt.Sprintf("NFA(states=%d, starts=%d, alphabet=%q)", a.NumStates(), len(a.start), string(a.Alphabet()))
}
