package experiments

import (
	"context"
	"fmt"
	"io"

	"tvgwait/internal/anbn"
	"tvgwait/internal/construct"
	"tvgwait/internal/core"
	"tvgwait/internal/dtn"
	"tvgwait/internal/engine"
	"tvgwait/internal/journey"
	"tvgwait/internal/tvg"
)

// Ablations measures the design choices DESIGN.md calls out, complementing
// the E1–E6 correctness experiments with scaling behaviour:
//
//	(a) the regularity witness under growing horizons — Theorem 2.2
//	    guarantees a finite automaton at every horizon, and this table
//	    shows how the configuration space and its minimal DFA grow on the
//	    Figure 1 graph;
//	(b) the cost of the waiting adversary — reachable configurations per
//	    waiting semantics at increasing horizons (the wait window scan is
//	    the dominant cost, bounded waiting is nearly free);
//	(c) the delivery-vs-budget trade-off at fixed contact density, the
//	    ablation slice of E5.
func Ablations(w io.Writer, opts Options) error {
	opts = opts.withDefaults()
	fmt.Fprintln(w, "== Ablations: scaling behaviour of the constructions ==")
	fmt.Fprintln(w)

	a, err := anbn.New(anbn.DefaultParams())
	if err != nil {
		return err
	}

	// (a) Regularity witness growth on Figure 1 under wait semantics.
	fmt.Fprintln(w, "  (a) Figure 1, wait semantics: ConfigNFA and minimal DFA vs horizon")
	fmt.Fprintf(w, "  %-10s %-12s %-12s %-16s\n", "horizon", "NFA states", "min-DFA", "|L∩Σ≤6|")
	horizons := []tvg.Time{50, 200, 800}
	if !opts.Quick {
		horizons = append(horizons, 3200)
	}
	for _, h := range horizons {
		nfa, err := construct.ConfigNFA(a, journey.Wait(), h)
		if err != nil {
			return err
		}
		dfa := nfa.Determinize(a.Alphabet()).Minimize()
		dec, err := core.NewDecider(a, journey.Wait(), h)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-10d %-12d %-12d %-16d\n",
			h, nfa.NumStates(), dfa.NumStates(), len(dec.AcceptedWords(6)))
	}
	fmt.Fprintln(w, "  (finite at every horizon — the Theorem 2.2 witness — and growing with it,")
	fmt.Fprintln(w, "   since the horizon-bounded language itself grows)")
	fmt.Fprintln(w)

	// (b) Search-space size per waiting semantics.
	fmt.Fprintln(w, "  (b) Figure 1: reachable configurations by mode (cost of the adversary)")
	fmt.Fprintf(w, "  %-10s %-10s %-10s %-10s %-10s\n", "horizon", "nowait", "wait[1]", "wait[4]", "wait")
	for _, h := range horizons {
		row := fmt.Sprintf("  %-10d", h)
		for _, mode := range []journey.Mode{
			journey.NoWait(), journey.BoundedWait(1), journey.BoundedWait(4), journey.Wait(),
		} {
			nfa, err := construct.ConfigNFA(a, mode, h)
			if err != nil {
				return err
			}
			row += fmt.Sprintf(" %-10d", nfa.NumStates())
		}
		fmt.Fprintln(w, row)
	}
	fmt.Fprintln(w)

	// (c) Delivery vs budget at fixed density.
	fmt.Fprintln(w, "  (c) delivery ratio vs waiting budget (edge-Markovian n=16, birth=0.02, death=0.5)")
	horizon := tvg.Time(100)
	messages := 40
	if opts.Quick {
		horizon = 40
		messages = 10
	}
	var modes []journey.Mode
	for _, d := range []tvg.Time{0, 1, 2, 4, 8, 16, 32} {
		modes = append(modes, journey.BoundedWait(d))
	}
	modes = append(modes, journey.Wait())
	report, err := batchEngine.Run(context.Background(), engine.ScenarioSpec{
		Graph: engine.GraphSpec{
			Model: "markov", Nodes: 16, Birth: 0.02, Death: 0.5, Horizon: horizon,
		},
		Modes:    engine.ModeStrings(modes),
		Messages: messages,
		Seed:     opts.Seed,
	})
	if err != nil {
		return err
	}
	fmt.Fprint(w, indent(dtn.FormatSweep(report.SweepRows()), "  "))
	fmt.Fprintln(w, "  (diminishing returns: most of the waiting benefit arrives by d ≈ contact gap)")
	fmt.Fprintln(w)
	return nil
}
