package tvg

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// checkCSRInvariants pins the layout contract every sweep relies on, for
// revisions exactly as for cold builds: (edge, dep)-sorted contacts with
// strictly increasing departures per edge, bracketing offsets, a
// (dep, edge)-sorted time index, consistent watermark.
func checkCSRInvariants(t *testing.T, c *ContactSet) {
	t.Helper()
	if got, want := len(c.edgeOff), c.g.NumEdges()+1; got != want {
		t.Fatalf("len(edgeOff) = %d, want %d", got, want)
	}
	if c.edgeOff[0] != 0 || int(c.edgeOff[len(c.edgeOff)-1]) != len(c.contacts) {
		t.Fatalf("edgeOff endpoints = [%d, %d], want [0, %d]", c.edgeOff[0], c.edgeOff[len(c.edgeOff)-1], len(c.contacts))
	}
	maxDep := Time(-1)
	for e := 0; e < c.g.NumEdges(); e++ {
		lo, hi := c.EdgeRange(EdgeID(e))
		if lo > hi {
			t.Fatalf("edge %d range [%d, %d) inverted", e, lo, hi)
		}
		for i := lo; i < hi; i++ {
			ct := c.contacts[i]
			if ct.Edge != EdgeID(e) {
				t.Fatalf("contact %d has edge %d, bracketed under %d", i, ct.Edge, e)
			}
			if i > lo && c.contacts[i-1].Dep >= ct.Dep {
				t.Fatalf("edge %d departures not strictly increasing at contact %d", e, i)
			}
			if ct.Dep < 0 || ct.Dep > c.horizon || ct.Arr <= ct.Dep {
				t.Fatalf("contact %d has invalid times dep=%d arr=%d", i, ct.Dep, ct.Arr)
			}
			if ct.Dep > maxDep {
				maxDep = ct.Dep
			}
		}
	}
	if c.lastDep != maxDep {
		t.Fatalf("lastDep = %d, want %d", c.lastDep, maxDep)
	}
	if len(c.byTime) != len(c.contacts) {
		t.Fatalf("len(byTime) = %d, want %d", len(c.byTime), len(c.contacts))
	}
	seen := 0
	for tick := Time(0); tick <= c.horizon; tick++ {
		ks := c.AtTick(tick)
		for j, k := range ks {
			ct := c.contacts[k]
			if ct.Dep != tick {
				t.Fatalf("AtTick(%d) lists contact departing at %d", tick, ct.Dep)
			}
			if j > 0 && c.contacts[ks[j-1]].Edge >= ct.Edge {
				t.Fatalf("AtTick(%d) not in ascending edge order", tick)
			}
		}
		seen += len(ks)
	}
	if seen != len(c.contacts) {
		t.Fatalf("time index covers %d contacts, want %d", seen, len(c.contacts))
	}
}

// contactKeys projects a set's contacts onto the sweep-visible quadruple,
// sorted, so streams with different edge groupings compare equal.
func contactKeys(c *ContactSet) []ContactRecord {
	out := make([]ContactRecord, 0, c.NumContacts())
	for _, ct := range c.Contacts() {
		out = append(out, ContactRecord{From: ct.From, To: ct.To, Dep: ct.Dep, Arr: ct.Arr})
	}
	sortRecords(out)
	return out
}

func sortRecords(rs []ContactRecord) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && recordLess(rs[j], rs[j-1]); j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

func recordLess(a, b ContactRecord) bool {
	if a.From != b.From {
		return a.From < b.From
	}
	if a.To != b.To {
		return a.To < b.To
	}
	if a.Dep != b.Dep {
		return a.Dep < b.Dep
	}
	return a.Arr < b.Arr
}

// buildBase streams a small deterministic schedule whose departures stop
// at cut, leaving room to append.
func buildBase(t *testing.T, nodes int, horizon, cut Time, seed int64) *ContactSet {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder()
	b.Reset(nodes, horizon)
	for e := 0; e < nodes*2; e++ {
		from := Node(rng.Intn(nodes))
		to := Node(rng.Intn(nodes))
		b.StartEdge(from, to, 'a')
		for dep := Time(rng.Intn(3)); dep <= cut; dep += Time(1 + rng.Intn(4)) {
			b.Append(dep, dep+Time(1+rng.Intn(3)))
		}
	}
	c, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func randomBatch(rng *rand.Rand, nodes int, lo, hi Time, count int) []ContactRecord {
	recs := make([]ContactRecord, 0, count)
	for i := 0; i < count; i++ {
		dep := lo + Time(rng.Int63n(int64(hi-lo+1)))
		recs = append(recs, ContactRecord{
			From: Node(rng.Intn(nodes)), To: Node(rng.Intn(nodes)),
			Dep: dep, Arr: dep + Time(1+rng.Intn(3)),
		})
	}
	return recs
}

func TestAppendContactsRevision(t *testing.T) {
	base := buildBase(t, 6, 60, 30, 1)
	checkCSRInvariants(t, base)
	if base.Revision() != 0 {
		t.Fatalf("cold build revision = %d, want 0", base.Revision())
	}
	baseContacts := base.NumContacts()
	baseKeys := contactKeys(base)
	baseDep := base.LastDep()

	rng := rand.New(rand.NewSource(2))
	recs := randomBatch(rng, 6, baseDep+1, 60, 25)
	rev, err := base.AppendContacts(recs)
	if err != nil {
		t.Fatal(err)
	}
	checkCSRInvariants(t, rev)
	if rev.Revision() != 1 {
		t.Fatalf("revision = %d, want 1", rev.Revision())
	}
	if rev.NumContacts() != baseContacts+len(recs) {
		t.Fatalf("revision has %d contacts, want %d", rev.NumContacts(), baseContacts+len(recs))
	}
	if !rev.Extends(base) {
		t.Fatal("revision does not Extend its base")
	}
	if base.Extends(rev) {
		t.Fatal("base claims to Extend its revision")
	}
	if !rev.Extends(rev) || !base.Extends(base) {
		t.Fatal("Extends not reflexive")
	}

	// The base is unchanged: same contacts, same watermark, same indexes.
	if base.NumContacts() != baseContacts || base.LastDep() != baseDep {
		t.Fatalf("base mutated by append: %d contacts, lastDep %d", base.NumContacts(), base.LastDep())
	}
	if !reflect.DeepEqual(contactKeys(base), baseKeys) {
		t.Fatal("base contact stream mutated by append")
	}

	// The revision's stream is exactly base + batch.
	want := append(append([]ContactRecord{}, baseKeys...), recs...)
	sortRecords(want)
	if !reflect.DeepEqual(contactKeys(rev), want) {
		t.Fatal("revision contact stream differs from base + batch")
	}

	// A second append chains (in place, after the first copy).
	if rev.LastDep() < 60 {
		recs2 := randomBatch(rng, 6, rev.LastDep()+1, 60, 10)
		rev2, err := rev.AppendContacts(recs2)
		if err != nil {
			t.Fatal(err)
		}
		checkCSRInvariants(t, rev2)
		if !rev2.Extends(rev) || !rev2.Extends(base) {
			t.Fatal("second revision does not Extend its ancestors")
		}
		if rev2.Revision() != 2 {
			t.Fatalf("second revision = %d, want 2", rev2.Revision())
		}
	}
}

func TestAppendContactsValidation(t *testing.T) {
	base := buildBase(t, 4, 40, 20, 3)
	wm := base.LastDep()
	cases := []struct {
		name string
		rec  ContactRecord
		frag string
	}{
		{"at watermark", ContactRecord{From: 0, To: 1, Dep: wm, Arr: wm + 1}, "not after"},
		{"before watermark", ContactRecord{From: 0, To: 1, Dep: wm - 3, Arr: wm - 1}, "not after"},
		{"past horizon", ContactRecord{From: 0, To: 1, Dep: 41, Arr: 42}, "horizon"},
		{"zero latency", ContactRecord{From: 0, To: 1, Dep: wm + 1, Arr: wm + 1}, "latency"},
		{"negative latency", ContactRecord{From: 0, To: 1, Dep: wm + 2, Arr: wm}, "latency"},
		{"bad from", ContactRecord{From: -1, To: 1, Dep: wm + 1, Arr: wm + 2}, "unknown node"},
		{"bad to", ContactRecord{From: 0, To: 99, Dep: wm + 1, Arr: wm + 2}, "unknown node"},
	}
	for _, tc := range cases {
		if _, err := base.AppendContacts([]ContactRecord{tc.rec}); err == nil {
			t.Errorf("%s: append accepted %+v", tc.name, tc.rec)
		} else if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.frag)
		}
	}
	// A rejected batch leaves the base fully usable.
	if _, err := base.AppendContacts([]ContactRecord{{From: 0, To: 1, Dep: wm + 1, Arr: wm + 2}}); err != nil {
		t.Fatalf("valid append after rejections: %v", err)
	}
	// Empty batches are a no-op, not a new revision.
	same, err := base.AppendContacts(nil)
	if err != nil || same != base {
		t.Fatalf("empty append = (%p, %v), want the base itself", same, err)
	}
}

func TestAppendContactsDuplicatesAndParallel(t *testing.T) {
	base := buildBase(t, 4, 30, 10, 4)
	wm := base.LastDep()
	// Two identical records and a same-tick different-arrival pair: all
	// admitted as parallel edges, none rejected.
	recs := []ContactRecord{
		{From: 0, To: 1, Dep: wm + 2, Arr: wm + 3},
		{From: 0, To: 1, Dep: wm + 2, Arr: wm + 3},
		{From: 0, To: 1, Dep: wm + 2, Arr: wm + 5},
		{From: 2, To: 3, Dep: wm + 1, Arr: wm + 2},
	}
	rev, err := base.AppendContacts(recs)
	if err != nil {
		t.Fatal(err)
	}
	checkCSRInvariants(t, rev)
	if rev.NumContacts() != base.NumContacts()+4 {
		t.Fatalf("revision has %d contacts, want %d", rev.NumContacts(), base.NumContacts()+4)
	}
}

func TestAppendContactsEmptyBase(t *testing.T) {
	b := NewBuilder()
	b.Reset(4, 20)
	base, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if base.LastDep() != -1 {
		t.Fatalf("empty set LastDep = %d, want -1", base.LastDep())
	}
	rev, err := base.AppendContacts([]ContactRecord{
		{From: 0, To: 1, Dep: 0, Arr: 1},
		{From: 1, To: 2, Dep: 5, Arr: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkCSRInvariants(t, rev)
	if !rev.Extends(base) {
		t.Fatal("revision of empty base does not Extend it")
	}
}

func TestAppendContactsBranching(t *testing.T) {
	base := buildBase(t, 5, 50, 20, 5)
	wm := base.LastDep()
	a, err := base.AppendContacts([]ContactRecord{{From: 0, To: 1, Dep: wm + 1, Arr: wm + 2}})
	if err != nil {
		t.Fatal(err)
	}
	bCh, err := base.AppendContacts([]ContactRecord{{From: 1, To: 2, Dep: wm + 3, Arr: wm + 4}})
	if err != nil {
		t.Fatal(err)
	}
	checkCSRInvariants(t, a)
	checkCSRInvariants(t, bCh)
	if a.Extends(bCh) || bCh.Extends(a) {
		t.Fatal("sibling branches claim to extend each other")
	}
	// Both branches still extend the base (directly or via cold fallback).
	if !a.Extends(base) && !bCh.Extends(base) {
		t.Fatal("neither branch Extends the base")
	}
	// The branches' streams stay independent.
	if a.NumContacts() != base.NumContacts()+1 || bCh.NumContacts() != base.NumContacts()+1 {
		t.Fatalf("branch sizes %d/%d, want %d", a.NumContacts(), bCh.NumContacts(), base.NumContacts()+1)
	}
	last := a.Contacts()[a.NumContacts()-1]
	if last.From != 0 || last.To != 1 || last.Dep != wm+1 {
		t.Fatalf("branch a's appended contact = %+v", last)
	}
	lastB := bCh.Contacts()[bCh.NumContacts()-1]
	if lastB.From != 1 || lastB.To != 2 || lastB.Dep != wm+3 {
		t.Fatalf("branch b's appended contact = %+v", lastB)
	}
}

func TestBuilderExtendMatchesAppendContacts(t *testing.T) {
	// Two identical bases: extending ONE base twice makes the second
	// extension a sibling branch with a fresh lineage (Extends false by
	// design), which is not what this test is about.
	base := buildBase(t, 6, 60, 25, 6)
	base2 := buildBase(t, 6, 60, 25, 6)
	wm := base.LastDep()
	recs := []ContactRecord{
		{From: 0, To: 1, Dep: wm + 1, Arr: wm + 2},
		{From: 0, To: 1, Dep: wm + 4, Arr: wm + 6},
		{From: 3, To: 2, Dep: wm + 2, Arr: wm + 3},
	}
	viaAppend, err := base2.AppendContacts(recs)
	if err != nil {
		t.Fatal(err)
	}

	b := NewBuilder()
	b.Extend(base)
	b.StartEdge(0, 1, 0)
	b.Append(wm+1, wm+2)
	b.Append(wm+4, wm+6)
	b.StartEdge(3, 2, 0)
	b.Append(wm+2, wm+3)
	viaExtend, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	checkCSRInvariants(t, viaExtend)
	if !viaExtend.Extends(base) {
		t.Fatal("Extend build does not Extend its base")
	}
	if !reflect.DeepEqual(contactKeys(viaExtend), contactKeys(viaAppend)) {
		t.Fatal("Builder.Extend and AppendContacts disagree on the contact stream")
	}

	// Violating the watermark through the streaming path fails at Finalize.
	b.Extend(viaExtend)
	b.StartEdge(0, 1, 0)
	b.Append(wm+1, wm+2) // at or before the new watermark
	if _, err := b.Finalize(); err == nil {
		t.Fatal("Extend accepted a departure at the base watermark")
	}

	// An Extend with no contacts returns the base unchanged.
	b.Extend(base)
	got, err := b.Finalize()
	if err != nil || got != base {
		t.Fatalf("empty Extend = (%p, %v), want the base itself", got, err)
	}
}

// TestAppendRevisionRecompiles pins that a revision's Graph is
// self-consistent: recompiling it over the same horizon reproduces the
// revision's contact stream exactly (same edge ids, same times).
func TestAppendRevisionRecompiles(t *testing.T) {
	base := buildBase(t, 5, 40, 15, 7)
	rng := rand.New(rand.NewSource(8))
	rev, err := base.AppendContacts(randomBatch(rng, 5, base.LastDep()+1, 40, 12))
	if err != nil {
		t.Fatal(err)
	}
	re, err := NewContactSet(rev.Graph(), rev.Horizon())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(re.Contacts(), rev.Contacts()) {
		t.Fatal("recompiling a revision's graph does not reproduce its contacts")
	}
}
