package main

import (
	"log"
	"net/http"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"tvgwait/internal/engine"
	"tvgwait/internal/obs"
)

// endpoints lists every instrumented route, in registration order. The
// per-endpoint instrument sets are created at construction, so the
// request path only ever does atomic ops on pre-built instruments.
var endpoints = []string{"/healthz", "/livez", "/simulate", "/journey", "/metrics", "/spectrum", "/contacts"}

// endpointMetrics is one route's instrument set.
type endpointMetrics struct {
	requests  obs.Counter    // all answered requests
	errors    obs.Counter    // responses with status >= 400
	throttled obs.Counter    // 429s (admission-semaphore rejections)
	latency   *obs.Histogram // wall time per request, ns
	respBytes *obs.Histogram // response body bytes
}

// httpMetrics aggregates the server's HTTP telemetry. Always
// maintained; registering on an obs.Registry only exposes it.
type httpMetrics struct {
	inflight obs.Gauge   // requests currently inside a handler
	panics   obs.Counter // handler panics contained by instrument()
	byPath   map[string]*endpointMetrics
}

func newHTTPMetrics() *httpMetrics {
	m := &httpMetrics{byPath: make(map[string]*endpointMetrics, len(endpoints))}
	for _, ep := range endpoints {
		m.byPath[ep] = &endpointMetrics{
			latency:   obs.NewHistogram(obs.LatencyBuckets()...),
			respBytes: obs.NewHistogram(obs.SizeBuckets()...),
		}
	}
	return m
}

// registerObs exposes the server's instruments on r and remembers the
// registry so routes() can serve GET /statusz from it. Part of the
// telemetry contract in DESIGN.md §8.
func (s *server) registerObs(r *obs.Registry) {
	s.reg = r
	for _, ep := range endpoints {
		em := s.metrics.byPath[ep]
		lbl := `endpoint="` + ep + `"`
		r.RegisterCounter("tvg_http_requests_total", lbl, "answered HTTP requests", &em.requests)
		r.RegisterCounter("tvg_http_errors_total", lbl, "responses with status >= 400", &em.errors)
		r.RegisterCounter("tvg_http_throttled_total", lbl, "admission rejections (429)", &em.throttled)
		r.RegisterHistogram("tvg_http_latency_ns", lbl, "request wall time in nanoseconds", em.latency)
		r.RegisterHistogram("tvg_http_response_bytes", lbl, "response body bytes", em.respBytes)
	}
	r.RegisterGauge("tvg_http_inflight", "", "requests currently inside a handler", &s.metrics.inflight)
	r.RegisterCounter("tvg_http_panics_total", "", "handler panics contained by the instrument envelope", &s.metrics.panics)
}

// statusRecorder observes the status and body size a handler produced
// without buffering anything. Recorders are pooled: instrument rents
// one per request and returns it after the access-log line is emitted.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

var recorderPool = sync.Pool{New: func() any { return new(statusRecorder) }}

func (r *statusRecorder) reset(w http.ResponseWriter) {
	r.ResponseWriter = w
	r.status = 0
	r.bytes = 0
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK // implicit 200 on first write
	}
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

// instrument wraps one route's handler with the telemetry envelope:
// in-flight gauge, per-endpoint counters, latency and response-size
// histograms, a per-request engine cache trace, panic containment, and
// (when enabled) one structured access-log line per request. All metric
// updates are atomic ops on pre-registered instruments — the only
// per-request allocations are the context pair carrying the cache trace.
//
// The finalization runs in a defer so it holds on every exit path: a
// panicking handler is contained (one 500, tvg_http_panics_total, a
// logged stack), its metrics are still recorded, and the pooled
// recorder is still returned — a panic storm must not leak the
// in-flight gauge or drain the recorder pool.
func (s *server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	em := s.metrics.byPath[endpoint]
	if em == nil {
		panic("tvgserve: instrument: unknown endpoint " + endpoint)
	}
	return func(w http.ResponseWriter, r *http.Request) {
		rec := recorderPool.Get().(*statusRecorder)
		rec.reset(w)
		ctx, trace := engine.WithCacheTrace(r.Context())
		s.metrics.inflight.Add(1)
		start := time.Now()
		defer func() {
			if p := recover(); p != nil {
				s.metrics.panics.Inc()
				log.Printf("tvgserve: panic in %s handler: %v\n%s", endpoint, p, debug.Stack())
				if rec.status == 0 {
					// Nothing written yet: the client gets a clean 500.
					// After first write the connection is torn down by
					// net/http instead — never a half body behind a 200.
					http.Error(rec, "internal server error", http.StatusInternalServerError)
				}
			}
			dur := time.Since(start)
			s.metrics.inflight.Add(-1)

			status := rec.status
			if status == 0 {
				status = http.StatusOK // handler wrote nothing: net/http sends 200
			}
			bytes := rec.bytes
			em.requests.Inc()
			if status >= 400 {
				em.errors.Inc()
			}
			if status == http.StatusTooManyRequests {
				em.throttled.Inc()
			}
			em.latency.Observe(dur.Nanoseconds())
			em.respBytes.Observe(bytes)

			if s.accessLog != nil {
				cache := "none"
				if trace.Touched() {
					if trace.Warm() {
						cache = "hit"
					} else {
						cache = "miss"
					}
				}
				s.accessLog.Printf("rid=%d endpoint=%s status=%d dur_us=%d bytes=%d cache=%s",
					s.reqSeq.Add(1), endpoint, status, dur.Microseconds(), bytes, cache)
			}
			rec.reset(nil) // drop the writer so the pool never pins a connection
			recorderPool.Put(rec)
		}()
		h(rec, r.WithContext(ctx))
	}
}

// logFinalSnapshot writes the registry's varz document through the
// standard logger — the shutdown path's last act, so a scrape-less
// deployment still gets one complete telemetry record per process.
func logFinalSnapshot(reg *obs.Registry) {
	var sb strings.Builder
	if err := reg.WriteVarz(&sb); err != nil {
		log.Printf("tvgserve: final telemetry snapshot failed: %v", err)
		return
	}
	log.Printf("tvgserve: final telemetry snapshot:\n%s", sb.String())
}
