package tvg

import (
	"math/rand"
	"testing"
)

// FuzzContactSetInvariants drives NewContactSet with fuzz-chosen graph
// shapes and checks the three CSR offset indexes (per-edge, per-node,
// per-tick) against a plain linear scan of the contact array — the
// DESIGN.md §1 invariants, with the fuzzer exploring node/edge/horizon
// combinations (including empty graphs, zero horizons and self-loops)
// the fixed-seed tests never draw.
func FuzzContactSetInvariants(f *testing.F) {
	f.Add(int64(1), uint8(5), uint8(12), uint8(40))
	f.Add(int64(7), uint8(1), uint8(0), uint8(0))
	f.Add(int64(42), uint8(2), uint8(30), uint8(3))
	f.Add(int64(-9), uint8(9), uint8(4), uint8(17))
	f.Fuzz(func(t *testing.T, seed int64, nodes, edges, horizon uint8) {
		n := 1 + int(nodes)%10
		e := int(edges) % 32
		h := Time(horizon) % 48
		g := buildFuzzGraph(seed, n, e)
		cs, err := NewContactSet(g, h)
		if err != nil {
			t.Fatalf("NewContactSet(n=%d, e=%d, h=%d): %v", n, e, h, err)
		}
		checkContactSetAgainstLinearScan(t, g, cs, h)
	})
}

// buildFuzzGraph derives a graph deterministically from the fuzz seed,
// mixing periodic, time-set and always presences with varying constant
// latencies (self-loops and parallel edges included).
func buildFuzzGraph(seed int64, nodes, edges int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New()
	g.AddNodes(nodes)
	for i := 0; i < edges; i++ {
		var pres Presence
		switch rng.Intn(4) {
		case 0:
			pattern := make([]bool, 1+rng.Intn(5))
			pattern[rng.Intn(len(pattern))] = true
			p, err := NewPeriodicPresence(pattern)
			if err != nil {
				panic(err)
			}
			pres = p
		case 1:
			var times []Time
			for t := Time(0); t <= 50; t++ {
				if rng.Intn(4) == 0 {
					times = append(times, t)
				}
			}
			pres = NewTimeSet(times...)
		case 2:
			pres = Never{}
		default:
			pres = Always{}
		}
		g.MustAddEdge(Edge{
			From: Node(rng.Intn(nodes)), To: Node(rng.Intn(nodes)),
			Label:    rune('a' + rng.Intn(3)),
			Presence: pres,
			Latency:  ConstLatency(Time(1 + rng.Intn(4))),
		})
	}
	return g
}

// checkContactSetAgainstLinearScan asserts that every offset index
// agrees with a brute-force walk of the flat contact array and the
// graph's schedules.
func checkContactSetAgainstLinearScan(t *testing.T, g *Graph, cs *ContactSet, horizon Time) {
	t.Helper()
	contacts := cs.Contacts()

	// Global ordering: sorted by (edge, dep), strictly increasing dep
	// per edge, endpoints denormalized correctly, latency ≥ 1.
	for i, c := range contacts {
		if i > 0 {
			prev := contacts[i-1]
			if prev.Edge > c.Edge || (prev.Edge == c.Edge && prev.Dep >= c.Dep) {
				t.Fatalf("contacts unsorted at %d: %+v then %+v", i, prev, c)
			}
		}
		e, ok := g.Edge(c.Edge)
		if !ok || e.From != c.From || e.To != c.To {
			t.Fatalf("contact %d endpoints disagree with edge table: %+v", i, c)
		}
		if c.Dep < 0 || c.Dep > horizon || c.Arr <= c.Dep {
			t.Fatalf("contact %d outside model: %+v (horizon %d)", i, c, horizon)
		}
	}

	// Per-edge index: EdgeRange brackets exactly the linear scan's
	// contacts of that edge, in order, and the ranges partition the
	// array.
	cursor := 0
	for id := EdgeID(0); int(id) < g.NumEdges(); id++ {
		lo, hi := cs.EdgeRange(id)
		if lo != cursor {
			t.Fatalf("edge %d range [%d,%d) breaks the partition at %d", id, lo, hi, cursor)
		}
		cursor = hi
		e, _ := g.Edge(id)
		scan := 0
		for tick := Time(0); tick <= horizon; tick++ {
			if !e.Presence.Present(tick) {
				continue
			}
			if lo+scan >= hi {
				t.Fatalf("edge %d: linear scan found more contacts than EdgeRange holds", id)
			}
			c := contacts[lo+scan]
			if c.Dep != tick || c.Arr != tick+e.Latency.Crossing(tick) {
				t.Fatalf("edge %d contact %d = %+v, scan expects dep %d", id, scan, c, tick)
			}
			scan++
		}
		if lo+scan != hi {
			t.Fatalf("edge %d: EdgeRange holds %d contacts, scan found %d", id, hi-lo, scan)
		}
	}
	if cursor != cs.NumContacts() {
		t.Fatalf("edge ranges cover %d of %d contacts", cursor, cs.NumContacts())
	}

	// Per-node index: OutEdges agrees with a linear scan of the edge
	// table, ascending.
	for n := Node(0); int(n) < g.NumNodes(); n++ {
		var want []EdgeID
		for id := EdgeID(0); int(id) < g.NumEdges(); id++ {
			if e, _ := g.Edge(id); e.From == n {
				want = append(want, id)
			}
		}
		got := cs.OutEdges(n)
		if len(got) != len(want) {
			t.Fatalf("OutEdges(%d) = %v, scan wants %v", n, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("OutEdges(%d) = %v, scan wants %v", n, got, want)
			}
		}
	}

	// Per-tick index: AtTick(t) lists exactly the contacts with Dep == t
	// found by a linear scan, in ascending edge order.
	covered := 0
	for tick := Time(0); tick <= horizon; tick++ {
		var want []int32
		for i, c := range contacts {
			if c.Dep == tick {
				want = append(want, int32(i))
			}
		}
		got := cs.AtTick(tick)
		if len(got) != len(want) {
			t.Fatalf("AtTick(%d) = %v, scan wants %v", tick, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("AtTick(%d) = %v, scan wants %v", tick, got, want)
			}
			if i > 0 && contacts[got[i-1]].Edge >= contacts[got[i]].Edge {
				t.Fatalf("AtTick(%d) not in ascending edge order", tick)
			}
		}
		covered += len(got)
	}
	if covered != cs.NumContacts() {
		t.Fatalf("tick index covers %d of %d contacts", covered, cs.NumContacts())
	}
}
