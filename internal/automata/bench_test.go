package automata

import (
	"fmt"
	"testing"
)

func BenchmarkRegexCompile(b *testing.B) {
	const pattern = "((a|b)*abb|ba(ab)*)+(a|b)?"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := CompileRegex(pattern); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeterminize(b *testing.B) {
	nfa := MustCompileRegex("((a|b)(a|b)(a|b)(a|b))*abb")
	alphabet := []rune{'a', 'b'}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := nfa.Determinize(alphabet)
		_ = d.NumStates()
	}
}

func BenchmarkMinimize(b *testing.B) {
	d := MustCompileRegex("((a|b)(a|b)(a|b)(a|b))*abb").Determinize([]rune{'a', 'b'})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := d.Minimize()
		_ = m.NumStates()
	}
}

func BenchmarkProductIntersect(b *testing.B) {
	x := MustCompileRegex("(a|b)*abb").Determinize([]rune{'a', 'b'}).Minimize()
	y := MustCompileRegex("a(a|b)*").Determinize([]rune{'a', 'b'}).Minimize()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Intersect(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDFAAccepts(b *testing.B) {
	d := MustCompileRegex("(a|b)*abb").Determinize([]rune{'a', 'b'}).Minimize()
	word := ""
	for i := 0; i < 64; i++ {
		word += "ab"
	}
	word += "abb"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !d.Accepts(word) {
			b.Fatal("must accept")
		}
	}
}

// Ablation: NFA acceptance (subset simulation per word) vs compiled DFA.
func BenchmarkNFAvsDFAAccepts(b *testing.B) {
	nfa := MustCompileRegex("(a|b)*abb")
	dfa := nfa.Determinize([]rune{'a', 'b'}).Minimize()
	word := ""
	for i := 0; i < 32; i++ {
		word += "ba"
	}
	word += "abb"
	b.Run("nfa", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !nfa.Accepts(word) {
				b.Fatal("must accept")
			}
		}
	})
	b.Run("dfa", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !dfa.Accepts(word) {
				b.Fatal("must accept")
			}
		}
	})
}

func BenchmarkCountAccepted(b *testing.B) {
	d := MustCompileRegex("(a|b)*abb").Determinize([]rune{'a', 'b'}).Minimize()
	for _, maxLen := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("len=%d", maxLen), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = d.CountAccepted(maxLen)
			}
		})
	}
}
