package engine

import (
	"context"
	"fmt"

	"tvgwait/internal/faultinject"
	"tvgwait/internal/journey"
	"tvgwait/internal/tvg"
)

// SpectrumRequest asks for the waiting spectrum of a generated network:
// the all-pairs journey metrics of an entire ladder of waiting budgets
// {nowait, d1 < … < dK, wait}, computed by ONE bit-parallel contact
// sweep instead of one per budget. This is the paper's inclusion chain
// L_nowait ⊆ L_wait[d] ⊆ L_wait[d'] ⊆ L_wait measured at the network
// level — what changes as you allow more waiting.
type SpectrumRequest struct {
	// Graph declares the network generator.
	Graph GraphSpec `json:"graph"`
	// Seed is the generator seed.
	Seed int64 `json:"seed,omitempty"`
	// Modes lists the ladder's waiting budgets in ParseMode syntax. The
	// ladder is normalized — sorted from least to most permissive,
	// duplicates (including wait:0 ≡ nowait) collapsed — and the
	// response carries one rung per normalized budget. Empty defaults
	// to ["nowait","wait:1","wait:2","wait:4","wait:8","wait"].
	Modes []string `json:"modes,omitempty"`
	// T0 is the earliest departure time (default 0).
	T0 tvg.Time `json:"t0,omitempty"`
}

// defaultLadder is the spectrum ladder used when a request names no
// modes: the two ends of the expressivity gap plus a geometric sweep of
// bounded budgets between them.
var defaultLadder = []string{"nowait", "wait:1", "wait:2", "wait:4", "wait:8", "wait"}

// SpectrumReport is the per-rung metric table of one compiled network,
// least permissive rung first.
type SpectrumReport struct {
	Model    string   `json:"model"`
	Nodes    int      `json:"nodes"`
	Horizon  tvg.Time `json:"horizon"`
	Seed     int64    `json:"seed"`
	T0       tvg.Time `json:"t0"`
	Contacts int      `json:"contacts"`
	// Rungs holds one metrics row per normalized ladder rung.
	Rungs []ModeMetrics `json:"rungs"`
	// FirstConnected names the least permissive rung at which the
	// network is temporally connected — the critical waiting budget.
	// Empty if no rung connects it.
	FirstConnected string `json:"firstConnected,omitempty"`
}

// Spectrum resolves a spectrum request against the (cached) compiled
// schedule of the request's graph. The whole ladder costs one
// wait-spectrum sweep (its 64-source blocks fanned across the engine's
// worker width) and one LRU entry per (spec, seed, t0, ladder) — where
// the per-mode Metrics path would pay one sweep and one cache entry per
// budget.
func (e *Engine) Spectrum(ctx context.Context, req SpectrumRequest) (*SpectrumReport, error) {
	if len(req.Modes) == 0 {
		req.Modes = defaultLadder
	}
	modes, err := ParseModes(req.Modes)
	if err != nil {
		return nil, err
	}
	if len(modes) > maxModes {
		return nil, specErr("at most %d modes, got %d", maxModes, len(modes))
	}
	if err := req.Graph.validate(); err != nil {
		return nil, err
	}
	if req.Graph.Model == "stream" {
		// Live streams answer through the incremental checkpoint cache
		// (suffix replay per revision) instead of the spectra row cache.
		return e.streamSpectrum(ctx, req, modes)
	}
	if req.T0 < 0 || req.T0 > req.Graph.Horizon {
		return nil, specErr("t0 %d outside [0, %d]", req.T0, req.Graph.Horizon)
	}
	ladder, err := journey.NewLadder(modes...)
	if err != nil {
		return nil, specErr("%v", err)
	}
	if err := e.admitFootprint(req.Graph.Nodes, ladder.Len()); err != nil {
		return nil, err
	}
	c, err := e.contactSet(ctx, req.Graph, req.Seed)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rows, err := e.spectrumRows(ctx, c, req.Graph, req.Seed, req.T0, ladder)
	if err != nil {
		return nil, err
	}
	report := &SpectrumReport{
		Model: req.Graph.Model, Nodes: c.Graph().NumNodes(), Horizon: c.Horizon(),
		Seed: req.Seed, T0: req.T0, Contacts: c.NumContacts(),
		Rungs: make([]ModeMetrics, len(rows)),
	}
	for i, row := range rows {
		report.Rungs[i] = *row
		if report.FirstConnected == "" && row.Connected {
			report.FirstConnected = row.Mode
		}
	}
	return report, nil
}

// spectrumRows returns the per-rung metric rows of (spec, seed, t0,
// ladder): one WaitSpectrum sweep, cached as a single spectra LRU entry
// keyed by the normalized ladder. Rows are shared with the cache; treat
// them as read-only (Metrics copies before relabeling).
func (e *Engine) spectrumRows(ctx context.Context, c *tvg.ContactSet, g GraphSpec, seed int64, t0 tvg.Time, ladder journey.Ladder) ([]*ModeMetrics, error) {
	key := fmt.Sprintf("%s|t0%d|ladder:%s", g.key(seed), t0, ladder)
	rows, hit, err := e.spectra.get(ctx, key, func() ([]*ModeMetrics, error) {
		if err := e.fault.Fire(faultinject.SiteSweep); err != nil {
			return nil, err
		}
		res, err := journey.WaitSpectrumCtx(e.baseCtx, c, ladder, t0, e.workers, e.sweepWidth, &e.sweeps)
		if err != nil {
			return nil, err
		}
		rows := make([]*ModeMetrics, res.NumRungs())
		for i := range rows {
			rows[i] = metricsFromMatrix(res.Mode(i), res.Arrivals(i))
		}
		return rows, nil
	})
	if err == nil {
		traceFrom(ctx).record(hit)
	}
	return rows, err
}
