package journey

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"testing"

	"tvgwait/internal/gen"
	"tvgwait/internal/tvg"
)

// diffLadders returns the ladder inputs of the spectrum differential
// suite, degenerate shapes included: a single rung, duplicate-adjacent
// bounds, wait:0 next to nowait, a bound at/above the horizon next to
// wait, and ladders without a wait (or without a nowait) end.
func diffLadders(horizon tvg.Time) map[string][]Mode {
	return map[string][]Mode{
		"full":        {NoWait(), BoundedWait(1), BoundedWait(3), BoundedWait(7), Wait()},
		"single":      {BoundedWait(3)},
		"single-wait": {Wait()},
		"single-no":   {NoWait()},
		"dup-d":       {BoundedWait(2), BoundedWait(2), NoWait(), BoundedWait(2)},
		"zero-vs-no":  {BoundedWait(0), NoWait(), BoundedWait(1)},
		"at-horizon":  {NoWait(), BoundedWait(horizon), BoundedWait(horizon + 5), Wait()},
		"unsorted":    {Wait(), BoundedWait(5), NoWait(), BoundedWait(1)},
		"no-ends":     {BoundedWait(2), BoundedWait(6)},
	}
}

// checkSpectrumMatches pins a spectrum result rung-for-rung to the
// independent per-mode sweeps: arrival matrices and packed reach
// bitsets must be bit-identical, and consecutive rungs must be nested
// (more waiting never loses a pair, never worsens an arrival).
func checkSpectrumMatches(t *testing.T, label string, c *tvg.ContactSet, res *SpectrumResult, t0 tvg.Time) {
	t.Helper()
	for i := 0; i < res.NumRungs(); i++ {
		mode := res.Mode(i)
		want := AllForemost(c, mode, t0)
		got := res.Arrivals(i)
		if !slices.Equal(got.arr, want.arr) {
			t.Fatalf("%s: rung %d (%s) arrival matrix differs from AllForemost", label, i, mode)
		}
		wantR := ReachabilityMatrix(c, mode, t0)
		gotR := res.Reach(i)
		if !slices.Equal(gotR.bits, wantR.bits) {
			t.Fatalf("%s: rung %d (%s) reach bitset differs from ReachabilityMatrix", label, i, mode)
		}
	}
	// Nesting invariant across consecutive rungs.
	for i := 1; i < res.NumRungs(); i++ {
		lo, hi := res.Arrivals(i-1), res.Arrivals(i)
		for p := range lo.arr {
			la, ha := lo.arr[p], hi.arr[p]
			if la >= 0 && (ha < 0 || ha > la) {
				t.Fatalf("%s: rung %d (%s) not nested in rung %d (%s) at pair %d: %d vs %d",
					label, i-1, res.Mode(i-1), i, res.Mode(i), p, la, ha)
			}
		}
	}
	// FirstConnected agrees with the per-rung matrices.
	first, ok := res.FirstConnected()
	for i := 0; i < res.NumRungs(); i++ {
		conn := res.Arrivals(i).Connected()
		if conn && (!ok || first > i) {
			t.Fatalf("%s: rung %d connected but FirstConnected = (%d, %v)", label, i, first, ok)
		}
		if ok && i == first && !conn {
			t.Fatalf("%s: FirstConnected = %d but that rung is not connected", label, first)
		}
	}
}

// TestWaitSpectrumMatchesAllForemost is the spectrum differential
// harness: across the four generator models, horizons, seeds, start
// times and ladder shapes (degenerate ones included), every rung of the
// single-sweep spectrum must be bit-identical to an independent
// AllForemost/ReachabilityMatrix pass under that rung's mode.
func TestWaitSpectrumMatchesAllForemost(t *testing.T) {
	for _, horizon := range []tvg.Time{12, 30, 55} {
		for seed := int64(1); seed <= 2; seed++ {
			for name, c := range diffNetworks(t, seed, horizon) {
				for _, t0 := range []tvg.Time{0, horizon / 3, horizon} {
					for lname, modes := range diffLadders(horizon) {
						ladder, err := NewLadder(modes...)
						if err != nil {
							t.Fatal(err)
						}
						label := fmt.Sprintf("%s/h=%d/seed=%d/t0=%d/%s", name, horizon, seed, t0, lname)
						res := WaitSpectrum(c, ladder, t0)
						checkSpectrumMatches(t, label, c, res, t0)
					}
				}
			}
		}
	}
}

// TestWaitSpectrumBlockBoundaries covers node counts above one machine
// word: partial tail blocks and multiple blocks per sweep.
func TestWaitSpectrumBlockBoundaries(t *testing.T) {
	ladder, err := NewLadder(NoWait(), BoundedWait(2), BoundedWait(6), Wait())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		nodes   int
		p       float64
		horizon tvg.Time
	}{
		{70, 0.004, 24},   // 2 blocks, 6-bit tail
		{130, 0.0015, 30}, // 3 blocks, 2-bit tail
	} {
		c, err := gen.Bernoulli(tc.nodes, tc.p, tc.horizon, 42, nil)
		if err != nil {
			t.Fatal(err)
		}
		res := WaitSpectrum(c, ladder, 0)
		checkSpectrumMatches(t, fmt.Sprintf("n=%d", tc.nodes), c, res, 0)
	}
}

// TestWaitSpectrumSparseFallback pushes nodes × span × rungs past
// msDenseCellLimit so the pending grid takes the hash-map path.
func TestWaitSpectrumSparseFallback(t *testing.T) {
	const n = 200
	const horizon = tvg.Time(45000)
	ladder, err := NewLadder(NoWait(), BoundedWait(5000), Wait())
	if err != nil {
		t.Fatal(err)
	}
	if int64(n)*int64(horizon+1)*int64(ladder.Len()) <= msDenseCellLimit {
		t.Fatalf("test setup no longer exceeds msDenseCellLimit")
	}
	rng := rand.New(rand.NewSource(3))
	g := tvg.New()
	g.AddNodes(n)
	addEdge := func(from, to int) {
		times := make([]tvg.Time, 0, 6)
		for k := 0; k < 6; k++ {
			times = append(times, tvg.Time(rng.Int63n(int64(horizon))))
		}
		g.MustAddEdge(tvg.Edge{
			From: tvg.Node(from), To: tvg.Node(to), Label: 'a',
			Presence: tvg.NewTimeSet(times...),
			Latency:  tvg.ConstLatency(tvg.Time(1 + rng.Intn(3))),
		})
	}
	for i := 0; i < n; i++ {
		addEdge(i, (i+1)%n)
		addEdge(i, (i+17)%n)
	}
	c, err := tvg.Compile(g, horizon)
	if err != nil {
		t.Fatal(err)
	}
	res := WaitSpectrum(c, ladder, 0)
	checkSpectrumMatches(t, "sparse", c, res, 0)
}

// TestWaitSpectrumEarlyExitReuse alternates a dense, quickly-saturating
// network (every rung completes, the sweep early-exits and must leave
// the pooled scratch clean) with a sparse one on a different ladder — a
// regression trap for the self-cleaning grid/bucket discipline across
// rung counts.
func TestWaitSpectrumEarlyExitReuse(t *testing.T) {
	const n = 80
	dense := tvg.New()
	dense.AddNodes(n)
	for i := 0; i < n; i++ {
		for _, step := range []int{1, 7, 31} {
			dense.MustAddEdge(tvg.Edge{
				From: tvg.Node(i), To: tvg.Node((i + step) % n), Label: 'a',
				Presence: tvg.Always{}, Latency: tvg.ConstLatency(1),
			})
		}
	}
	cDense, err := tvg.Compile(dense, 200)
	if err != nil {
		t.Fatal(err)
	}
	cSparse, err := gen.Bernoulli(70, 0.003, 40, 11, nil)
	if err != nil {
		t.Fatal(err)
	}
	denseLadder, err := NewLadder(BoundedWait(1), BoundedWait(4), Wait())
	if err != nil {
		t.Fatal(err)
	}
	sparseLadder, err := NewLadder(NoWait(), BoundedWait(3), BoundedWait(9), Wait())
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		res := WaitSpectrum(cDense, denseLadder, 0)
		if _, ok := res.FirstConnected(); !ok {
			t.Fatal("dense static graph must be connected at some rung")
		}
		checkSpectrumMatches(t, fmt.Sprintf("dense/round=%d", round), cDense, res, 0)
		// Immediately reuse the pooled scratch on a different shape,
		// ladder length and mode mix.
		res = WaitSpectrum(cSparse, sparseLadder, 0)
		checkSpectrumMatches(t, fmt.Sprintf("sparse/round=%d", round), cSparse, res, 0)
	}
}

// TestWaitSpectrumParallelMatches pins the block fan-out contract for
// the spectrum: every worker count must produce bit-identical rung
// matrices.
func TestWaitSpectrumParallelMatches(t *testing.T) {
	ladder, err := NewLadder(NoWait(), BoundedWait(2), Wait())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		nodes   int
		p       float64
		horizon tvg.Time
	}{{70, 0.02, 24}, {130, 0.0015, 30}, {192, 0.008, 40}} {
		c, err := gen.Bernoulli(tc.nodes, tc.p, tc.horizon, 7, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := WaitSpectrum(c, ladder, 0)
		for _, workers := range []int{0, 2, 3, 16} {
			got := WaitSpectrumParallel(c, ladder, 0, workers)
			for i := 0; i < want.NumRungs(); i++ {
				if !slices.Equal(got.Arrivals(i).arr, want.Arrivals(i).arr) {
					t.Fatalf("n=%d workers=%d: rung %d differs from sequential", tc.nodes, workers, i)
				}
			}
		}
	}
}

// TestWaitSpectrumEdgeCases pins the corner inputs: empty and singleton
// graphs, start times past the horizon, zero-value ladders.
func TestWaitSpectrumEdgeCases(t *testing.T) {
	ladder, err := NewLadder(NoWait(), Wait())
	if err != nil {
		t.Fatal(err)
	}

	empty, err := tvg.Compile(tvg.New(), 10)
	if err != nil {
		t.Fatal(err)
	}
	res := WaitSpectrum(empty, ladder, 0)
	if res.NumRungs() != 2 || res.Arrivals(0).NumNodes() != 0 {
		t.Errorf("empty graph spectrum shape wrong: %d rungs", res.NumRungs())
	}
	if i, ok := res.FirstConnected(); !ok || i != 0 {
		t.Errorf("empty graph FirstConnected = (%d, %v), want (0, true)", i, ok)
	}

	g1 := tvg.New()
	g1.AddNode("solo")
	c1, err := tvg.Compile(g1, 5)
	if err != nil {
		t.Fatal(err)
	}
	res = WaitSpectrum(c1, ladder, 3)
	for i := 0; i < 2; i++ {
		if arr, ok := res.Arrivals(i).At(0, 0); !ok || arr != 3 {
			t.Errorf("singleton rung %d At(0,0) = (%d, %v), want (3, true)", i, arr, ok)
		}
	}

	// t0 past the horizon: only the diagonal is reachable, every rung.
	g2 := tvg.New()
	g2.AddNodes(2)
	g2.MustAddEdge(tvg.Edge{From: 0, To: 1, Label: 'a', Presence: tvg.Always{}, Latency: tvg.ConstLatency(1)})
	c2, err := tvg.Compile(g2, 10)
	if err != nil {
		t.Fatal(err)
	}
	checkSpectrumMatches(t, "past-horizon", c2, WaitSpectrum(c2, ladder, 15), 15)

	// Zero-value ladder: no rungs, no work.
	res = WaitSpectrum(c2, Ladder{}, 0)
	if res.NumRungs() != 0 {
		t.Errorf("zero ladder spectrum has %d rungs, want 0", res.NumRungs())
	}
	if _, ok := res.FirstConnected(); ok {
		t.Error("zero ladder FirstConnected should be false")
	}
}

// TestLadderNormalization pins the normalization contract: sorting by
// permissiveness, Bound-level dedup (wait:0 ≡ nowait), canonical rung
// modes, RungOf mapping and the error cases.
func TestLadderNormalization(t *testing.T) {
	l, err := NewLadder(Wait(), BoundedWait(4), NoWait(), BoundedWait(0), BoundedWait(4), BoundedWait(1))
	if err != nil {
		t.Fatal(err)
	}
	want := []Mode{NoWait(), BoundedWait(1), BoundedWait(4), Wait()}
	if got := l.Modes(); !slices.Equal(got, want) {
		t.Fatalf("normalized ladder = %v, want %v", got, want)
	}
	if l.String() != "nowait,wait[1],wait[4],wait" {
		t.Fatalf("ladder String = %q", l.String())
	}
	// Consecutive rungs strictly gain permissiveness.
	for i := 1; i < l.Len(); i++ {
		if !l.Mode(i).AtLeastAsPermissive(l.Mode(i - 1)) {
			t.Fatalf("rung %d not at least as permissive as rung %d", i, i-1)
		}
		if l.Mode(i - 1).AtLeastAsPermissive(l.Mode(i)) {
			t.Fatalf("rungs %d and %d are equally permissive (dedup failed)", i-1, i)
		}
	}
	// RungOf maps by Bound, not by surface form.
	for _, tc := range []struct {
		m    Mode
		rung int
		ok   bool
	}{
		{NoWait(), 0, true},
		{BoundedWait(0), 0, true},
		{BoundedWait(1), 1, true},
		{BoundedWait(4), 2, true},
		{Wait(), 3, true},
		{BoundedWait(2), 0, false},
		{Mode{}, 0, false},
	} {
		if i, ok := l.RungOf(tc.m); ok != tc.ok || (ok && i != tc.rung) {
			t.Errorf("RungOf(%s) = (%d, %v), want (%d, %v)", tc.m, i, ok, tc.rung, tc.ok)
		}
	}
	// Re-normalization is a fixed point.
	l2, err := NewLadder(l.Modes()...)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(l2.Modes(), l.Modes()) {
		t.Fatalf("re-normalized ladder %v differs from %v", l2.Modes(), l.Modes())
	}

	// Error cases: empty input, invalid mode.
	if _, err := NewLadder(); err == nil {
		t.Error("NewLadder() should reject an empty ladder")
	}
	if _, err := NewLadder(NoWait(), Mode{}); err == nil {
		t.Error("NewLadder should reject an invalid mode")
	}
	// Ladders without a wait rung keep their finite top.
	l3, err := NewLadder(BoundedWait(9), BoundedWait(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := l3.RungOf(Wait()); ok {
		t.Error("finite ladder should not map Wait to a rung")
	}
}

// TestWindowEndOverflow is the regression test for the signed overflow
// in Mode.WindowEnd: arr + d used to wrap for huge bounds, yielding a
// window end *before* arr.
func TestWindowEndOverflow(t *testing.T) {
	const horizon = tvg.Time(100)
	cases := []struct {
		mode Mode
		arr  tvg.Time
		want tvg.Time
	}{
		{BoundedWait(math.MaxInt64), 5, horizon},
		{BoundedWait(math.MaxInt64 - 2), 5, horizon},
		{BoundedWait(1), math.MaxInt64 - 1, horizon},
		{BoundedWait(2), 50, 52},
		{BoundedWait(60), 50, horizon},
		{NoWait(), 7, 7},
		{Wait(), 7, horizon},
	}
	for _, tc := range cases {
		if got := tc.mode.WindowEnd(tc.arr, horizon); got != tc.want {
			t.Errorf("%s.WindowEnd(%d, %d) = %d, want %d", tc.mode, tc.arr, horizon, got, tc.want)
		}
		if got := tc.mode.WindowEnd(tc.arr, horizon); got < tc.arr && got != horizon {
			t.Errorf("%s.WindowEnd(%d, %d) = %d is before arr without clamping", tc.mode, tc.arr, horizon, got)
		}
	}
	// The huge-bound semantics end to end: a bounded wait past any
	// plausible pause must behave like wait on a real search.
	c, err := gen.Bernoulli(8, 0.05, 40, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	huge := BoundedWait(math.MaxInt64)
	for src := tvg.Node(0); src < 8; src++ {
		for dst := tvg.Node(0); dst < 8; dst++ {
			_, wa, wok := Foremost(c, Wait(), src, dst, 0)
			_, ha, hok := Foremost(c, huge, src, dst, 0)
			if wok != hok || (wok && wa != ha) {
				t.Fatalf("Foremost(%d,%d): wait = (%d, %v), wait[MaxInt64] = (%d, %v)",
					src, dst, wa, wok, ha, hok)
			}
		}
	}
}

// TestWaitSpectrumHugeBound is the regression test for the cascading-
// expiry overflow: a ladder pairing nowait with wait[MaxInt64] used to
// wrap batch + d + 1 negative when a stale nowait copy cascaded to the
// huge rung, panicking with a negative expire index (reachable from
// POST /spectrum). The huge rung must also behave exactly like wait.
func TestWaitSpectrumHugeBound(t *testing.T) {
	c, err := gen.EdgeMarkovian(gen.EdgeMarkovianParams{
		Nodes: 24, PBirth: 0.03, PDeath: 0.5, Horizon: 60, Seed: 9,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ladder, err := NewLadder(NoWait(), BoundedWait(2), BoundedWait(math.MaxInt64), Wait())
	if err != nil {
		t.Fatal(err)
	}
	res := WaitSpectrum(c, ladder, 0)
	checkSpectrumMatches(t, "huge-bound", c, res, 0)
	hugeM, ok := res.ArrivalsFor(BoundedWait(math.MaxInt64))
	if !ok {
		t.Fatal("huge bound missing from ladder")
	}
	waitM, ok := res.ArrivalsFor(Wait())
	if !ok {
		t.Fatal("wait missing from ladder")
	}
	if !slices.Equal(hugeM.arr, waitM.arr) {
		t.Error("wait[MaxInt64] matrix differs from wait")
	}
}
