package tvgtext

import (
	"strings"
	"testing"

	"tvgwait/internal/core"
	"tvgwait/internal/journey"
	"tvgwait/internal/tvg"
)

const ferrySpec = `
# Two-hop ferry network: the trip needs buffering at the island.
node port
node island
node mainland
edge port island a presence=at:5 latency=const:1 name=ferryA
edge island mainland b presence=at:2,8 latency=const:1 name=ferryB
initial port
accepting mainland
`

func TestParseFerry(t *testing.T) {
	a, err := ParseAutomaton(strings.NewReader(ferrySpec))
	if err != nil {
		t.Fatal(err)
	}
	g := a.Graph()
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("parsed %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	e, _ := g.Edge(0)
	if e.Name != "ferryA" || e.Label != 'a' {
		t.Errorf("edge 0 = %+v", e)
	}
	wait, err := core.NewDecider(a, journey.Wait(), 12)
	if err != nil {
		t.Fatal(err)
	}
	if !wait.Accepts("ab") {
		t.Error("parsed automaton should accept ab under wait")
	}
	no, err := core.NewDecider(a, journey.NoWait(), 12)
	if err != nil {
		t.Fatal(err)
	}
	if no.Accepts("ab") {
		t.Error("parsed automaton should reject ab under nowait")
	}
}

func TestParseAllScheduleKinds(t *testing.T) {
	spec := `
node u
node v
edge u v a presence=always latency=const:1
edge u v b presence=never latency=const:1
edge u u c presence=periodic:101 latency=periodic:1,2,3
edge u v d presence=during:2-5,8-9 latency=scale:3
edge v u e presence=at:4 latency=scale:2+1
initial u
accepting v
start 1
`
	a, err := ParseAutomaton(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	if a.StartTime() != 1 {
		t.Errorf("start time = %d", a.StartTime())
	}
	g := a.Graph()
	if g.NumEdges() != 5 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	// Spot-check schedules.
	e0, _ := g.Edge(0)
	if !e0.Presence.Present(99) {
		t.Error("always wrong")
	}
	e1, _ := g.Edge(1)
	if e1.Presence.Present(0) {
		t.Error("never wrong")
	}
	e2, _ := g.Edge(2)
	if !e2.Presence.Present(0) || e2.Presence.Present(1) || !e2.Presence.Present(2) {
		t.Error("periodic presence wrong")
	}
	if e2.Latency.Crossing(1) != 2 {
		t.Error("periodic latency wrong")
	}
	e3, _ := g.Edge(3)
	if !e3.Presence.Present(3) || e3.Presence.Present(5) || !e3.Presence.Present(8) {
		t.Error("during wrong")
	}
	if e3.Latency.Crossing(4) != 8 { // (3-1)*4
		t.Error("scale latency wrong")
	}
	e4, _ := g.Edge(4)
	if e4.Latency.Crossing(4) != 5 { // (2-1)*4+1
		t.Error("scale+offset latency wrong")
	}
}

func TestRoundTrip(t *testing.T) {
	a, err := ParseAutomaton(strings.NewReader(ferrySpec))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := FormatAutomaton(a, &b); err != nil {
		t.Fatal(err)
	}
	back, err := ParseAutomaton(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("re-parse failed: %v\nserialized:\n%s", err, b.String())
	}
	// Same language under both semantics.
	for _, mode := range []journey.Mode{journey.NoWait(), journey.Wait()} {
		d1, err := core.NewDecider(a, mode, 12)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := core.NewDecider(back, mode, 12)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []string{"", "a", "b", "ab", "ba", "aab"} {
			if d1.Accepts(w) != d2.Accepts(w) {
				t.Errorf("mode %s: round trip changed membership of %q", mode, w)
			}
		}
	}
}

func TestRoundTripAllKinds(t *testing.T) {
	spec := `
node u
node v
edge u v a presence=during:2-5 latency=scale:3 name=x
edge u u b presence=periodic:110 latency=periodic:2,1 name=y
edge v u c presence=at:1,9 latency=const:4 name=z
edge v v d presence=never latency=const:1 name=w
initial u
accepting v
start 2
`
	a, err := ParseAutomaton(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := FormatAutomaton(a, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"during:2-5", "periodic:110", "periodic:2,1", "at:1,9", "const:4", "never", "scale:3", "start 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("serialization missing %q:\n%s", want, out)
		}
	}
	if _, err := ParseAutomaton(strings.NewReader(out)); err != nil {
		t.Errorf("re-parse: %v", err)
	}
}

func TestFormatRejectsFunctions(t *testing.T) {
	g := tvg.New()
	u := g.AddNode("u")
	g.MustAddEdge(tvg.Edge{
		From: u, To: u, Label: 'a',
		Presence: tvg.PresenceFunc(func(tvg.Time) bool { return true }),
		Latency:  tvg.ConstLatency(1),
	})
	a := core.NewAutomaton(g)
	a.AddInitial(u)
	var b strings.Builder
	if err := FormatAutomaton(a, &b); err == nil {
		t.Error("function-backed presence should not serialize")
	}
	g2 := tvg.New()
	w := g2.AddNode("w")
	g2.MustAddEdge(tvg.Edge{
		From: w, To: w, Label: 'a',
		Presence: tvg.Always{},
		Latency:  tvg.LatencyFunc(func(tvg.Time) tvg.Time { return 1 }),
	})
	a2 := core.NewAutomaton(g2)
	a2.AddInitial(w)
	if err := FormatAutomaton(a2, &b); err == nil {
		t.Error("function-backed latency should not serialize")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"bogus directive",
		"node",
		"edge u v a presence=always latency=const:1", // nodes not declared
		"node u\nedge u",
		"node u\nnode v\nedge u v ab presence=always latency=const:1",     // long label
		"node u\nnode v\nedge u v a presence=always",                      // missing latency
		"node u\nnode v\nedge u v a presence=bogus latency=const:1",       // bad presence
		"node u\nnode v\nedge u v a presence=at: latency=const:1",         // empty times
		"node u\nnode v\nedge u v a presence=at:x latency=const:1",        // bad time
		"node u\nnode v\nedge u v a presence=during:3 latency=const:1",    // bad interval
		"node u\nnode v\nedge u v a presence=during:a-b latency=const:1",  // bad bounds
		"node u\nnode v\nedge u v a presence=periodic:12 latency=const:1", // bad bits
		"node u\nnode v\nedge u v a presence=always latency=const:0",      // zero latency
		"node u\nnode v\nedge u v a presence=always latency=bogus:1",      // bad latency kind
		"node u\nnode v\nedge u v a presence=always latency=periodic:0",   // zero periodic latency
		"node u\nnode v\nedge u v a presence=always latency=scale:0",      // zero factor
		"node u\nnode v\nedge u v a presence=always latency=scale:2+x",    // bad offset
		"node u\nnode v\nedge u v a presence=always latency=const:1 junk", // bare attribute
		"node u\nnode v\nedge u v a presence=always latency=const:1 k=v",  // unknown attribute
		"initial ghost",
		"node u\naccepting ghost",
		"node u\nstart abc",
		"node u\nstart",
		"node u\ninitial u\ninitial", // malformed initial
		"node u\naccepting",
		"node u", // no initial state
	}
	for _, spec := range cases {
		if _, err := ParseAutomaton(strings.NewReader(spec)); err == nil {
			t.Errorf("spec should fail:\n%s", spec)
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	spec := `
# leading comment

node u   # trailing comment
initial u
accepting u
`
	a, err := ParseAutomaton(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := core.NewDecider(a, journey.Wait(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Accepts("") {
		t.Error("single accepting initial node should accept ε")
	}
}
