package lang

import (
	"fmt"
	"sort"
	"sync"
)

// Sym is a grammar symbol: either a terminal rune or a nonterminal name.
type Sym struct {
	// Term is true for terminal symbols.
	Term bool
	// R is the terminal rune (valid when Term).
	R rune
	// NT is the nonterminal name (valid when !Term).
	NT string
}

// T returns a terminal symbol.
func T(r rune) Sym { return Sym{Term: true, R: r} }

// N returns a nonterminal symbol.
func N(name string) Sym { return Sym{NT: name} }

func (s Sym) String() string {
	if s.Term {
		return fmt.Sprintf("%q", s.R)
	}
	return s.NT
}

// CFG is a context-free grammar. Productions map each nonterminal to a set
// of right-hand sides; the empty right-hand side denotes ε.
//
// Membership queries convert the grammar to Chomsky normal form once
// (lazily, guarded by a sync.Once), so a CFG must not gain rules after its
// first Contains call.
type CFG struct {
	name  string
	start string
	rules map[string][][]Sym

	cnfOnce   sync.Once
	cnfCached *cnfForm
}

var _ Language = (*CFG)(nil)

// NewCFG builds a grammar with the given start symbol. Rules are added
// with AddRule.
func NewCFG(name, start string) *CFG {
	return &CFG{name: name, start: start, rules: make(map[string][][]Sym)}
}

// AddRule adds the production head -> rhs. An empty rhs is ε.
func (g *CFG) AddRule(head string, rhs ...Sym) {
	cp := make([]Sym, len(rhs))
	copy(cp, rhs)
	g.rules[head] = append(g.rules[head], cp)
}

// Name implements Language.
func (g *CFG) Name() string { return g.name }

// Start returns the start nonterminal.
func (g *CFG) Start() string { return g.start }

// Alphabet implements Language: the sorted set of terminals appearing in
// productions.
func (g *CFG) Alphabet() []rune {
	seen := make(map[rune]bool)
	for _, prods := range g.rules {
		for _, rhs := range prods {
			for _, s := range rhs {
				if s.Term {
					seen[s.R] = true
				}
			}
		}
	}
	out := make([]rune, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Contains implements Language via CYK on the Chomsky-normal-form
// conversion of the grammar. The CNF is computed once and cached.
func (g *CFG) Contains(word string) bool {
	if !overAlphabet(word, g.Alphabet()) {
		return false
	}
	return g.cnf().member(word)
}

// cnfForm is a grammar in Chomsky normal form: every production is either
// A -> BC or A -> a; S -> ε is tracked by the epsilon flag.
type cnfForm struct {
	start   int
	epsilon bool           // start derives ε
	unary   map[rune][]int // terminal -> heads of A -> a
	binary  [][][2]int     // per head: list of (B, C) bodies
	n       int            // number of nonterminals
}

func (g *CFG) cnf() *cnfForm {
	g.cnfOnce.Do(func() { g.cnfCached = g.toCNF() })
	return g.cnfCached
}

// toCNF converts the grammar to Chomsky normal form via the standard
// pipeline: START wrapping, TERM (terminals in long rules), BIN
// (binarization), DEL (ε-elimination), UNIT (unit-production elimination).
func (g *CFG) toCNF() *cnfForm {
	fresh := 0
	gensym := func(prefix string) string {
		fresh++
		return fmt.Sprintf("_%s%d", prefix, fresh)
	}

	// Copy rules into a mutable working set, wrapping the start symbol.
	rules := make(map[string][][]Sym)
	for head, prods := range g.rules {
		for _, rhs := range prods {
			rules[head] = append(rules[head], append([]Sym(nil), rhs...))
		}
	}
	start := gensym("S")
	rules[start] = [][]Sym{{N(g.start)}}

	// TERM: replace terminals in productions of length >= 2.
	termNT := map[rune]string{}
	for head, prods := range rules {
		for pi, rhs := range prods {
			if len(rhs) < 2 {
				continue
			}
			for si, s := range rhs {
				if !s.Term {
					continue
				}
				nt, ok := termNT[s.R]
				if !ok {
					nt = gensym("T")
					termNT[s.R] = nt
					rules[nt] = append(rules[nt], []Sym{T(s.R)})
				}
				rules[head][pi][si] = N(nt)
			}
		}
	}

	// BIN: binarize productions of length > 2.
	for head := range rules {
		var newProds [][]Sym
		for _, rhs := range rules[head] {
			for len(rhs) > 2 {
				nt := gensym("B")
				rules[nt] = append(rules[nt], []Sym{rhs[len(rhs)-2], rhs[len(rhs)-1]})
				rhs = append(rhs[:len(rhs)-2], N(nt))
			}
			newProds = append(newProds, rhs)
		}
		rules[head] = newProds
	}

	// DEL: compute nullable nonterminals, then expand productions.
	nullable := map[string]bool{}
	for changed := true; changed; {
		changed = false
		for head, prods := range rules {
			if nullable[head] {
				continue
			}
			for _, rhs := range prods {
				all := true
				for _, s := range rhs {
					if s.Term || !nullable[s.NT] {
						all = false
						break
					}
				}
				if all {
					nullable[head] = true
					changed = true
					break
				}
			}
		}
	}
	for head, prods := range rules {
		seen := map[string]bool{}
		var out [][]Sym
		add := func(rhs []Sym) {
			key := fmt.Sprint(rhs)
			if !seen[key] {
				seen[key] = true
				out = append(out, rhs)
			}
		}
		for _, rhs := range prods {
			switch len(rhs) {
			case 0:
				if head == start {
					add(rhs)
				}
			case 1:
				add(rhs)
			case 2:
				add(rhs)
				if !rhs[0].Term && nullable[rhs[0].NT] {
					add([]Sym{rhs[1]})
				}
				if !rhs[1].Term && nullable[rhs[1].NT] {
					add([]Sym{rhs[0]})
				}
			}
		}
		if head == start && nullable[g.start] {
			add(nil)
		}
		rules[head] = out
	}

	// UNIT: eliminate A -> B chains by transitive closure.
	unitReach := map[string]map[string]bool{}
	heads := make([]string, 0, len(rules))
	for head := range rules {
		heads = append(heads, head)
	}
	sort.Strings(heads)
	for _, head := range heads {
		reach := map[string]bool{head: true}
		frontier := []string{head}
		for len(frontier) > 0 {
			h := frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			for _, rhs := range rules[h] {
				if len(rhs) == 1 && !rhs[0].Term && !reach[rhs[0].NT] {
					reach[rhs[0].NT] = true
					frontier = append(frontier, rhs[0].NT)
				}
			}
		}
		unitReach[head] = reach
	}

	// Index nonterminals and assemble the CNF tables.
	ntID := map[string]int{}
	id := func(nt string) int {
		if i, ok := ntID[nt]; ok {
			return i
		}
		i := len(ntID)
		ntID[nt] = i
		return i
	}
	c := &cnfForm{unary: make(map[rune][]int)}
	c.start = id(start)
	type binRule struct {
		head, b, cNT int
	}
	var bins []binRule
	for _, head := range heads {
		hid := id(head)
		for target := range unitReach[head] {
			for _, rhs := range rules[target] {
				switch len(rhs) {
				case 0:
					if head == start {
						c.epsilon = true
					}
				case 1:
					if rhs[0].Term {
						c.unary[rhs[0].R] = append(c.unary[rhs[0].R], hid)
					}
					// Unit nonterminal productions handled by closure.
				case 2:
					bins = append(bins, binRule{hid, id(rhs[0].NT), id(rhs[1].NT)})
				}
			}
		}
	}
	c.n = len(ntID)
	c.binary = make([][][2]int, c.n)
	for _, b := range bins {
		c.binary[b.head] = append(c.binary[b.head], [2]int{b.b, b.cNT})
	}
	// Deduplicate unary lists.
	for r, list := range c.unary {
		sort.Ints(list)
		out := list[:0]
		for i, v := range list {
			if i == 0 || v != out[len(out)-1] {
				out = append(out, v)
			}
		}
		c.unary[r] = out
	}
	return c
}

// member runs CYK over the CNF form.
func (c *cnfForm) member(word string) bool {
	runes := []rune(word)
	n := len(runes)
	if n == 0 {
		return c.epsilon
	}
	// table[i][j][A]: A derives runes[i:i+j+1].
	table := make([][][]bool, n)
	for i := range table {
		table[i] = make([][]bool, n)
		for j := range table[i] {
			table[i][j] = make([]bool, c.n)
		}
	}
	for i, r := range runes {
		for _, a := range c.unary[r] {
			table[i][0][a] = true
		}
	}
	for span := 2; span <= n; span++ {
		for i := 0; i+span <= n; i++ {
			cell := table[i][span-1]
			for split := 1; split < span; split++ {
				left := table[i][split-1]
				right := table[i+split][span-split-1]
				for a := 0; a < c.n; a++ {
					if cell[a] {
						continue
					}
					for _, bc := range c.binary[a] {
						if left[bc[0]] && right[bc[1]] {
							cell[a] = true
							break
						}
					}
				}
			}
		}
	}
	return table[0][n-1][c.start]
}

// AnBnGrammar returns the CFG S -> aSb | ab for {aⁿbⁿ : n ≥ 1}.
func AnBnGrammar() *CFG {
	g := NewCFG("CFG a^n b^n", "S")
	g.AddRule("S", T('a'), N("S"), T('b'))
	g.AddRule("S", T('a'), T('b'))
	return g
}

// PalindromeGrammar returns a CFG for palindromes over {a,b}, ε included.
func PalindromeGrammar() *CFG {
	g := NewCFG("CFG palindromes", "S")
	g.AddRule("S")
	g.AddRule("S", T('a'))
	g.AddRule("S", T('b'))
	g.AddRule("S", T('a'), N("S"), T('a'))
	g.AddRule("S", T('b'), N("S"), T('b'))
	return g
}

// DyckGrammar returns a CFG for the Dyck language of balanced brackets
// over {(,)} (ε included): S -> (S)S | ε.
func DyckGrammar() *CFG {
	g := NewCFG("CFG Dyck", "S")
	g.AddRule("S")
	g.AddRule("S", T('('), N("S"), T(')'), N("S"))
	return g
}
