// Package dtn is a store-carry-forward network simulator — the paper's
// motivating setting made executable. Messages are flooded epidemically
// over a compiled contact schedule; the waiting semantics (journey.Mode)
// is the buffering policy:
//
//   - NoWait: nodes have no buffers — a copy arriving at time t can only
//     be forwarded on a contact departing exactly at t;
//   - BoundedWait(d): a copy can sit in a buffer for at most d ticks
//     before each forwarding;
//   - Wait: full store-carry-forward with unbounded buffering.
//
// A message is deliverable iff a feasible journey (under the same mode)
// exists from its source at its creation time to its destination — the
// simulator and the journey search are cross-checked in the tests. The
// delivery-ratio gap between modes is the quantitative "power of waiting"
// the paper's introduction asks about.
package dtn

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"tvgwait/internal/journey"
	"tvgwait/internal/tvg"
)

// Message is a unicast payload to be carried from Src to Dst.
type Message struct {
	// ID identifies the message in reports.
	ID int
	// Src and Dst are the endpoints.
	Src, Dst tvg.Node
	// Created is the time the message enters Src's buffer.
	Created tvg.Time
}

// Result describes one simulated message.
type Result struct {
	// Delivered reports whether a copy reached Dst within the horizon.
	Delivered bool
	// DeliveredAt is the earliest arrival time at Dst (valid if Delivered).
	DeliveredAt tvg.Time
	// Latency is DeliveredAt - Created (valid if Delivered).
	Latency tvg.Time
	// Transmissions counts every copy transmission performed by the
	// epidemic flood (a measure of overhead).
	Transmissions int
	// NodesReached counts the nodes that ever held a copy (incl. Src).
	NodesReached int
}

// Simulate floods one message over the compiled contact set under the
// given buffering policy and returns delivery statistics.
//
// The flood is exact: a node may hold several copies with different
// arrival times (a later copy has a fresher waiting budget), and every
// (contact, copy) pair within budget is used. Consequently Delivered
// matches the existence of a feasible journey and DeliveredAt matches the
// foremost arrival.
//
// Simulate rents a pooled Scratch for the flood's working state; callers
// running many floods on one goroutine can hold their own via NewScratch.
func Simulate(c *tvg.ContactSet, mode journey.Mode, msg Message) (Result, error) {
	s := floodPool.Get().(*Scratch)
	defer floodPool.Put(s)
	return s.Simulate(c, mode, msg)
}

// SimulateCtx is Simulate with a cancellation checkpoint threaded into
// the flood (see Scratch.SimulateCtx): a cancelled ctx aborts within
// one checkpoint interval with an error wrapping journey.ErrCanceled.
func SimulateCtx(ctx context.Context, c *tvg.ContactSet, mode journey.Mode, msg Message) (Result, error) {
	s := floodPool.Get().(*Scratch)
	defer floodPool.Put(s)
	return s.SimulateCtx(ctx, c, mode, msg)
}

// BroadcastResult describes one source flooding to all nodes.
type BroadcastResult struct {
	// Reached[n] reports whether node n ever held a copy.
	Reached []bool
	// Arrival[n] is the earliest arrival at node n (-1 if not reached).
	Arrival []tvg.Time
	// Ratio is the fraction of nodes reached (including the source).
	Ratio float64
	// Transmissions counts all copy transmissions.
	Transmissions int
}

// Broadcast floods from src at time t0 and reports per-node reachability —
// the broadcast primitive the paper cites as fundamental for dynamic
// networks. Like Simulate, it rents a pooled Scratch.
func Broadcast(c *tvg.ContactSet, mode journey.Mode, src tvg.Node, t0 tvg.Time) (BroadcastResult, error) {
	s := floodPool.Get().(*Scratch)
	defer floodPool.Put(s)
	return s.Broadcast(c, mode, src, t0)
}

// BroadcastCtx is Broadcast with a cancellation checkpoint (see
// SimulateCtx).
func BroadcastCtx(ctx context.Context, c *tvg.ContactSet, mode journey.Mode, src tvg.Node, t0 tvg.Time) (BroadcastResult, error) {
	s := floodPool.Get().(*Scratch)
	defer floodPool.Put(s)
	return s.BroadcastCtx(ctx, c, mode, src, t0)
}

// CoverageCurve floods from src at t0 and returns, for every tick in
// [t0, horizon], how many nodes hold a copy at or before that tick — the
// epidemic growth curve. The curve is nondecreasing and its final value
// equals the number of nodes the broadcast reaches.
func CoverageCurve(c *tvg.ContactSet, mode journey.Mode, src tvg.Node, t0 tvg.Time) ([]int, error) {
	br, err := Broadcast(c, mode, src, t0)
	if err != nil {
		return nil, err
	}
	n := c.Horizon() - t0 + 1
	curve := make([]int, n)
	for _, arr := range br.Arrival {
		if arr < 0 {
			continue
		}
		idx := arr - t0
		if idx < 0 {
			idx = 0
		}
		if idx >= n {
			continue // reached only after the horizon tick window
		}
		curve[idx]++
	}
	running := 0
	for i := range curve {
		running += curve[i]
		curve[i] = running
	}
	return curve, nil
}

// SweepRow is one aggregated line of a delivery experiment.
type SweepRow struct {
	// Mode is the buffering policy of this row.
	Mode journey.Mode
	// Messages is the number of simulated messages.
	Messages int
	// DeliveryRatio is the fraction delivered.
	DeliveryRatio float64
	// MeanLatency is the average latency over delivered messages
	// (0 if none were delivered).
	MeanLatency float64
	// MeanTransmissions is the average flood overhead per message.
	MeanTransmissions float64
}

// Sweep simulates the same random message workload under every mode and
// returns one row per mode. The workload is `messages` random (src, dst)
// pairs with src ≠ dst, created at time 0, drawn deterministically from
// the seed.
func Sweep(c *tvg.ContactSet, modes []journey.Mode, messages int, seed int64) ([]SweepRow, error) {
	n := c.Graph().NumNodes()
	if n < 2 {
		return nil, fmt.Errorf("dtn: sweep needs at least 2 nodes")
	}
	if messages < 1 {
		return nil, fmt.Errorf("dtn: sweep needs at least 1 message")
	}
	scratch := NewScratch()
	rng := rand.New(rand.NewSource(seed))
	msgs := make([]Message, messages)
	for i := range msgs {
		src := rng.Intn(n)
		dst := rng.Intn(n - 1)
		if dst >= src {
			dst++
		}
		msgs[i] = Message{ID: i, Src: tvg.Node(src), Dst: tvg.Node(dst)}
	}
	rows := make([]SweepRow, 0, len(modes))
	for _, mode := range modes {
		row := SweepRow{Mode: mode, Messages: messages}
		delivered := 0
		var latencySum, txSum float64
		for _, m := range msgs {
			r, err := scratch.Simulate(c, mode, m)
			if err != nil {
				return nil, err
			}
			if r.Delivered {
				delivered++
				latencySum += float64(r.Latency)
			}
			txSum += float64(r.Transmissions)
		}
		row.DeliveryRatio = float64(delivered) / float64(messages)
		if delivered > 0 {
			row.MeanLatency = latencySum / float64(delivered)
		}
		row.MeanTransmissions = txSum / float64(messages)
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatSweep renders sweep rows as an aligned text table.
func FormatSweep(rows []SweepRow) string {
	out := fmt.Sprintf("%-10s %9s %10s %12s %14s\n", "mode", "messages", "delivery", "mean-latency", "transmissions")
	for _, r := range rows {
		out += fmt.Sprintf("%-10s %9d %9.1f%% %12.2f %14.2f\n",
			r.Mode, r.Messages, 100*r.DeliveryRatio, r.MeanLatency, r.MeanTransmissions)
	}
	return out
}

// SortModes orders modes from least to most permissive, for stable tables.
func SortModes(modes []journey.Mode) []journey.Mode {
	out := append([]journey.Mode(nil), modes...)
	sort.SliceStable(out, func(i, j int) bool {
		return out[j].AtLeastAsPermissive(out[i]) && !out[i].AtLeastAsPermissive(out[j])
	})
	return out
}
