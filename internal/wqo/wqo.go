// Package wqo implements the well-quasi-order machinery behind the proof
// of Theorem 2.2. The paper proves L_wait regular by introducing a
// quasi-order on words ("possibility of inclusion for corresponding
// journeys"), showing it is a well quasi-order with a Higman-style
// argument, and applying the Harju–Ilie regularity criterion (closure
// under a monotone WQO implies regularity).
//
// This package provides the checkable side of that technique:
//
//   - the scattered-subword (Higman) order and a generic QuasiOrder
//     interface, with the prefix order as a non-WQO counterexample;
//   - dominating-pair search (the finite trace of Higman's lemma);
//   - minimal elements / antichain extraction;
//   - upward and downward closures of regular languages under the subword
//     order, computed on NFAs (Haines' theorem: both are always regular);
//   - closedness tests of a language with respect to a quasi-order (the
//     hypothesis of the Harju–Ilie criterion), with witnesses.
//
// The specific journey-inclusion order is defined only in the arXiv
// version of the paper (arXiv:1205.1975); the generic toolkit here is the
// faithful substrate for the announced proof technique (see DESIGN.md §5).
package wqo

import (
	"tvgwait/internal/automata"
	"tvgwait/internal/lang"
)

// QuasiOrder is a reflexive, transitive relation on words.
type QuasiOrder interface {
	// Name identifies the order in reports.
	Name() string
	// LE reports whether u is below v in the order.
	LE(u, v string) bool
}

// Subword is the scattered-subword (Higman) order: u ≤ v iff u can be
// obtained from v by deleting letters. Over any finite alphabet it is a
// well quasi-order (Higman 1952), the engine of the paper's Theorem 2.2.
type Subword struct{}

var _ QuasiOrder = Subword{}

// Name implements QuasiOrder.
func (Subword) Name() string { return "subword (Higman)" }

// LE implements QuasiOrder by greedy embedding, which is exact for the
// subword order.
func (Subword) LE(u, v string) bool {
	ru, rv := []rune(u), []rune(v)
	i := 0
	for _, r := range rv {
		if i < len(ru) && ru[i] == r {
			i++
		}
	}
	return i == len(ru)
}

// Prefix is the prefix order: u ≤ v iff v = u·w for some w. It is a
// partial order but NOT a well quasi-order (e.g. {a, ba, bba, ...} is an
// infinite antichain); it serves as the counterexample showing that the
// WQO property, not mere transitivity, powers the Harju–Ilie criterion.
type Prefix struct{}

var _ QuasiOrder = Prefix{}

// Name implements QuasiOrder.
func (Prefix) Name() string { return "prefix" }

// LE implements QuasiOrder.
func (Prefix) LE(u, v string) bool {
	return len(u) <= len(v) && v[:len(u)] == u
}

// FindDominatingPair returns the first (in lexicographic (j, i) order of
// discovery) pair of indices i < j with seq[i] ≤ seq[j], or ok = false if
// the sequence is an antichain-with-descents (no such pair). For a WQO,
// every infinite sequence contains such a pair; finite sequences may not.
func FindDominatingPair(qo QuasiOrder, seq []string) (i, j int, ok bool) {
	for jj := 1; jj < len(seq); jj++ {
		for ii := 0; ii < jj; ii++ {
			if qo.LE(seq[ii], seq[jj]) {
				return ii, jj, true
			}
		}
	}
	return 0, 0, false
}

// MinimalElements returns the minimal elements of the word set under the
// order: every word of the set is above some returned word, and no
// returned word is strictly above another. For a WQO the result is always
// finite, and for the subword order it generates the upward closure of
// the set.
func MinimalElements(qo QuasiOrder, words []string) []string {
	var mins []string
	for _, w := range words {
		dominated := false
		for _, m := range mins {
			if qo.LE(m, w) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		// Remove previous minima that w is below.
		keep := mins[:0]
		for _, m := range mins {
			if !qo.LE(w, m) {
				keep = append(keep, m)
			}
		}
		mins = append(keep, w)
	}
	return mins
}

// DownwardClosureNFA returns an NFA for the downward closure of the NFA's
// language under the subword order: every word obtained by deleting
// letters from an accepted word. The construction adds an ε-bypass for
// every labeled transition (skip the letter instead of reading it); by
// Haines' theorem the result — like the downward closure of ANY language
// — is regular.
func DownwardClosureNFA(a *automata.NFA) *automata.NFA {
	out := a.Clone()
	alphabet := a.Alphabet()
	for s := 0; s < a.NumStates(); s++ {
		for _, sym := range alphabet {
			for _, t := range a.TransitionsFrom(automata.State(s), sym) {
				out.AddEpsilon(automata.State(s), t)
			}
		}
	}
	return out
}

// UpwardClosureNFA returns an NFA for the upward closure of the NFA's
// language under the subword order, over the given alphabet: every word
// containing an accepted word as a scattered subword. The construction
// adds a self-loop on every alphabet symbol at every state (insertions are
// ignored). If alphabet is nil, the NFA's own alphabet is used.
func UpwardClosureNFA(a *automata.NFA, alphabet []rune) *automata.NFA {
	if alphabet == nil {
		alphabet = a.Alphabet()
	}
	out := a.Clone()
	for s := 0; s < out.NumStates(); s++ {
		for _, sym := range alphabet {
			out.AddTransition(automata.State(s), sym, automata.State(s))
		}
	}
	return out
}

// ClosureOfFinite builds the minimal DFA of the upward or downward closure
// of a finite word set over the alphabet.
func ClosureOfFinite(words []string, alphabet []rune, upward bool) *automata.DFA {
	a := automata.FromWords(words)
	var closed *automata.NFA
	if upward {
		closed = UpwardClosureNFA(a, alphabet)
	} else {
		closed = DownwardClosureNFA(a)
	}
	return closed.Determinize(alphabet).Minimize()
}

// Violation is a witness that a language is not closed under an order.
type Violation struct {
	// Lower ≤ Upper in the order, with exactly one of them in the language
	// against the closure direction.
	Lower, Upper string
}

// IsDownwardClosed checks, over every pair of words of length at most
// maxLen, that v ∈ L and u ≤ v imply u ∈ L. It returns a violation
// witness otherwise.
func IsDownwardClosed(l lang.Language, qo QuasiOrder, maxLen int) (bool, *Violation) {
	words := automata.AllWords(l.Alphabet(), maxLen)
	members := make([]bool, len(words))
	for i, w := range words {
		members[i] = l.Contains(w)
	}
	for i, u := range words {
		if members[i] {
			continue
		}
		for j, v := range words {
			if members[j] && qo.LE(u, v) {
				return false, &Violation{Lower: u, Upper: v}
			}
		}
	}
	return true, nil
}

// IsUpwardClosed checks, over every pair of words of length at most
// maxLen, that u ∈ L and u ≤ v imply v ∈ L. It returns a violation
// witness otherwise.
func IsUpwardClosed(l lang.Language, qo QuasiOrder, maxLen int) (bool, *Violation) {
	words := automata.AllWords(l.Alphabet(), maxLen)
	members := make([]bool, len(words))
	for i, w := range words {
		members[i] = l.Contains(w)
	}
	for i, u := range words {
		if !members[i] {
			continue
		}
		for j, v := range words {
			if !members[j] && qo.LE(u, v) {
				return false, &Violation{Lower: u, Upper: v}
			}
		}
	}
	return true, nil
}
