package engine

import (
	"fmt"
	"math"
	"sort"

	"tvgwait/internal/dtn"
	"tvgwait/internal/tvg"
)

// ModeReport aggregates one waiting mode's unicast workload across all
// replicates.
type ModeReport struct {
	// Mode is the waiting budget, in ParseMode syntax.
	Mode string `json:"mode"`
	// Messages is the number of simulated messages (all replicates).
	Messages int `json:"messages"`
	// Delivered counts the delivered messages.
	Delivered int `json:"delivered"`
	// DeliveryRatio is Delivered / Messages.
	DeliveryRatio float64 `json:"deliveryRatio"`
	// MeanLatency averages latency over delivered messages (0 if none).
	MeanLatency float64 `json:"meanLatency"`
	// LatencyP50/P90/P99 are nearest-rank latency quantiles over
	// delivered messages (0 if none).
	LatencyP50 float64 `json:"latencyP50"`
	LatencyP90 float64 `json:"latencyP90"`
	LatencyP99 float64 `json:"latencyP99"`
	// MeanTransmissions averages flood overhead over all messages.
	MeanTransmissions float64 `json:"meanTransmissions"`
}

// BroadcastModeReport aggregates one waiting mode's broadcast floods
// across all replicates.
type BroadcastModeReport struct {
	// Mode is the waiting budget, in ParseMode syntax.
	Mode string `json:"mode"`
	// Runs is the number of floods (one per replicate).
	Runs int `json:"runs"`
	// MeanRatio / MinRatio / MaxRatio summarize the fraction of nodes
	// reached.
	MeanRatio float64 `json:"meanRatio"`
	MinRatio  float64 `json:"minRatio"`
	MaxRatio  float64 `json:"maxRatio"`
	// MeanTransmissions averages flood overhead per run.
	MeanTransmissions float64 `json:"meanTransmissions"`
}

// Report is the aggregated outcome of one engine run. It contains no
// wall-clock or scheduling artifacts: for a fixed spec and seed the
// report is byte-identical at any worker count (Spec echoes the input
// with Workers cleared for exactly that reason).
type Report struct {
	// Spec echoes the executed scenario (defaults applied, Workers
	// cleared).
	Spec ScenarioSpec `json:"spec"`
	// Contacts sums compiled contacts over all replicate schedules.
	Contacts int `json:"contacts"`
	// Unicast holds one row per mode for workload scenarios.
	Unicast []ModeReport `json:"unicast,omitempty"`
	// Broadcast holds one row per mode for broadcast scenarios.
	Broadcast []BroadcastModeReport `json:"broadcast,omitempty"`
}

func newReport(spec ScenarioSpec, compiled []*tvg.ContactSet) *Report {
	spec.Workers = 0
	r := &Report{Spec: spec}
	for _, c := range compiled {
		r.Contacts += c.TotalContacts()
	}
	return r
}

// modeAggregator streams per-message results into a ModeReport.
type modeAggregator struct {
	report    ModeReport
	latencies []float64
	txSum     float64
}

func newModeAggregator(mode fmt.Stringer, messages int) *modeAggregator {
	return &modeAggregator{report: ModeReport{Mode: mode.String(), Messages: messages}}
}

func (a *modeAggregator) add(res dtn.Result) {
	if res.Delivered {
		a.report.Delivered++
		a.latencies = append(a.latencies, float64(res.Latency))
	}
	a.txSum += float64(res.Transmissions)
}

func (a *modeAggregator) finish() ModeReport {
	r := a.report
	r.DeliveryRatio = float64(r.Delivered) / float64(r.Messages)
	r.MeanTransmissions = a.txSum / float64(r.Messages)
	if len(a.latencies) > 0 {
		sum := 0.0
		for _, l := range a.latencies {
			sum += l
		}
		r.MeanLatency = sum / float64(len(a.latencies))
		sort.Float64s(a.latencies)
		r.LatencyP50 = quantile(a.latencies, 0.50)
		r.LatencyP90 = quantile(a.latencies, 0.90)
		r.LatencyP99 = quantile(a.latencies, 0.99)
	}
	return r
}

// quantile is the nearest-rank quantile of an ascending-sorted sample
// (shared by the latency and eccentricity summaries).
func quantile[T float64 | tvg.Time](sorted []T, q float64) T {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// SweepRows converts the unicast section to dtn sweep rows, for rendering
// with dtn.FormatSweep (the historical experiment-table format).
func (r *Report) SweepRows() []dtn.SweepRow {
	rows := make([]dtn.SweepRow, 0, len(r.Unicast))
	for _, mr := range r.Unicast {
		mode, err := ParseMode(mr.Mode)
		if err != nil {
			continue // unreachable: Mode strings round-trip through ParseMode
		}
		rows = append(rows, dtn.SweepRow{
			Mode:              mode,
			Messages:          mr.Messages,
			DeliveryRatio:     mr.DeliveryRatio,
			MeanLatency:       mr.MeanLatency,
			MeanTransmissions: mr.MeanTransmissions,
		})
	}
	return rows
}

// FormatUnicast renders the unicast section: the classic sweep table plus
// a latency-quantile table.
func (r *Report) FormatUnicast() string {
	return dtn.FormatSweep(r.SweepRows()) + r.FormatQuantiles()
}

// FormatQuantiles renders the per-mode latency quantiles as an aligned
// table.
func (r *Report) FormatQuantiles() string {
	out := fmt.Sprintf("%-10s %9s %9s %9s\n", "mode", "lat-p50", "lat-p90", "lat-p99")
	for _, mr := range r.Unicast {
		out += fmt.Sprintf("%-10s %9.1f %9.1f %9.1f\n", mr.Mode, mr.LatencyP50, mr.LatencyP90, mr.LatencyP99)
	}
	return out
}

// FormatBroadcast renders the broadcast section as an aligned table.
func (r *Report) FormatBroadcast() string {
	out := fmt.Sprintf("%-10s %10s %10s %10s %14s\n", "mode", "reached", "min", "max", "transmissions")
	for _, br := range r.Broadcast {
		out += fmt.Sprintf("%-10s %9.1f%% %9.1f%% %9.1f%% %14.2f\n",
			br.Mode, 100*br.MeanRatio, 100*br.MinRatio, 100*br.MaxRatio, br.MeanTransmissions)
	}
	return out
}
