package journey

import (
	"fmt"
	"strings"

	"tvgwait/internal/tvg"
)

// Hop is one edge traversal of a journey: the edge and its departure time.
// The arrival time is determined by the schedule (departure + latency).
type Hop struct {
	Edge   tvg.EdgeID
	Depart tvg.Time
}

// Journey is a walk over time: a sequence of hops whose edges are
// consecutive in the underlying graph and whose times respect the
// presence function. Whether the pauses between hops are feasible depends
// on the waiting semantics (Mode) it is validated against.
//
// The zero value is the empty journey, which trivially stays at a node.
type Journey struct {
	Hops []Hop
}

// Len returns the number of hops.
func (j Journey) Len() int { return len(j.Hops) }

// Word returns the word spelled by the journey: the concatenation of the
// labels of its edges. This is the central object of the paper — the
// language of a TVG is the set of words spelled by its feasible journeys.
func (j Journey) Word(g *tvg.Graph) (string, error) {
	var b strings.Builder
	for i, h := range j.Hops {
		e, ok := g.Edge(h.Edge)
		if !ok {
			return "", fmt.Errorf("journey: hop %d references unknown edge %d", i, h.Edge)
		}
		b.WriteRune(e.Label)
	}
	return b.String(), nil
}

// Endpoints returns the start and end nodes of the journey. ok is false
// for the empty journey (which has no intrinsic endpoints) and for
// journeys referencing unknown edges.
func (j Journey) Endpoints(g *tvg.Graph) (from, to tvg.Node, ok bool) {
	if len(j.Hops) == 0 {
		return 0, 0, false
	}
	first, ok1 := g.Edge(j.Hops[0].Edge)
	last, ok2 := g.Edge(j.Hops[len(j.Hops)-1].Edge)
	if !ok1 || !ok2 {
		return 0, 0, false
	}
	return first.From, last.To, true
}

// Departure returns the departure time of the first hop; ok is false for
// the empty journey.
func (j Journey) Departure() (tvg.Time, bool) {
	if len(j.Hops) == 0 {
		return 0, false
	}
	return j.Hops[0].Depart, true
}

// Arrival returns the arrival time of the journey's last hop according to
// the compiled schedule.
func (j Journey) Arrival(c *tvg.ContactSet) (tvg.Time, error) {
	if len(j.Hops) == 0 {
		return 0, fmt.Errorf("journey: empty journey has no arrival")
	}
	last := j.Hops[len(j.Hops)-1]
	arr, ok := c.ArrivalAt(last.Edge, last.Depart)
	if !ok {
		return 0, fmt.Errorf("journey: last hop departs at %d when edge %d is absent", last.Depart, last.Edge)
	}
	return arr, nil
}

// Validate checks that the journey is feasible under the given waiting
// semantics within the compiled schedule: every hop departs while its edge
// is present, consecutive hops share a node, departures never precede the
// previous arrival, and every pause is allowed by the mode.
func (j Journey) Validate(c *tvg.ContactSet, mode Mode) error {
	if !mode.IsValid() {
		return fmt.Errorf("journey: invalid mode")
	}
	g := c.Graph()
	var prevTo tvg.Node
	var prevArr tvg.Time
	for i, h := range j.Hops {
		e, ok := g.Edge(h.Edge)
		if !ok {
			return fmt.Errorf("journey: hop %d references unknown edge %d", i, h.Edge)
		}
		if h.Depart < 0 || h.Depart > c.Horizon() {
			return fmt.Errorf("journey: hop %d departs at %d, outside horizon [0,%d]", i, h.Depart, c.Horizon())
		}
		arr, present := c.ArrivalAt(h.Edge, h.Depart)
		if !present {
			return fmt.Errorf("journey: hop %d departs at %d but edge %s is absent", i, h.Depart, e.Name)
		}
		if i > 0 {
			if e.From != prevTo {
				return fmt.Errorf("journey: hop %d starts at node %s but previous hop ended at %s",
					i, g.NodeName(e.From), g.NodeName(prevTo))
			}
			pause := h.Depart - prevArr
			if pause < 0 {
				return fmt.Errorf("journey: hop %d departs at %d before previous arrival %d", i, h.Depart, prevArr)
			}
			if !mode.AllowsPause(pause) {
				return fmt.Errorf("journey: hop %d pauses %d ticks, not allowed under %s", i, pause, mode)
			}
		}
		prevTo = e.To
		prevArr = arr
	}
	return nil
}

// IsDirect reports whether the journey is direct (every pause is zero),
// i.e. feasible under NoWait (assuming it validates under Wait).
func (j Journey) IsDirect(c *tvg.ContactSet) bool {
	return j.Validate(c, NoWait()) == nil
}

// String renders the journey compactly for logs and error messages.
func (j Journey) String() string {
	if len(j.Hops) == 0 {
		return "⟨empty journey⟩"
	}
	parts := make([]string, len(j.Hops))
	for i, h := range j.Hops {
		parts[i] = fmt.Sprintf("e%d@%d", h.Edge, h.Depart)
	}
	return "⟨" + strings.Join(parts, " → ") + "⟩"
}
