package dtn

import (
	"fmt"
	"testing"

	"tvgwait/internal/gen"
	"tvgwait/internal/journey"
	"tvgwait/internal/tvg"
)

func benchNetwork(b *testing.B, nodes int) *tvg.Compiled {
	b.Helper()
	c, err := gen.EdgeMarkovian(gen.EdgeMarkovianParams{
		Nodes: nodes, PBirth: 0.03, PDeath: 0.5, Horizon: 80, Seed: 11,
	}, nil)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// Ablation: flood cost by network size and waiting budget.
func BenchmarkSimulateScale(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		c := benchNetwork(b, n)
		msg := Message{Src: 0, Dst: tvg.Node(n - 1), Created: 0}
		for _, mode := range []journey.Mode{journey.NoWait(), journey.Wait()} {
			b.Run(fmt.Sprintf("n=%d/%s", n, mode), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := Simulate(c, mode, msg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkBroadcast(b *testing.B) {
	c := benchNetwork(b, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Broadcast(c, journey.Wait(), 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBroadcastContactSet is the headline flood benchmark of the
// flat-core refactor: the same wait-mode broadcast as BenchmarkBroadcast
// but with an explicitly held Scratch, i.e. the engine's per-worker
// usage pattern. The pre-CSR flood was ~561 allocs/op on this network;
// the contact-set flood's remaining allocations are the returned
// Reached/Arrival slices.
func BenchmarkBroadcastContactSet(b *testing.B) {
	c := benchNetwork(b, 16)
	s := NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Broadcast(c, journey.Wait(), 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}
