// Package construct implements the constructions behind the paper's three
// theorems, in both directions where both exist:
//
//   - Theorem 2.2, easy half (regular ⊆ L_wait): FromDFA/FromRegex build a
//     static TVG whose language equals a given regular language under every
//     waiting semantics.
//   - Theorem 2.2, hard half (L_wait ⊆ regular): ConfigNFA extracts a
//     finite automaton recognizing the horizon-bounded language of any
//     TVG-automaton (the regularity witness), and FootprintNFA recognizes
//     the exact wait language of recurrent (e.g. periodic) TVGs.
//   - Theorem 2.3 (L_wait[d] = L_nowait): Dilate time-expands a schedule
//     by a factor k; with k = d+1 bounded waiting becomes useless, so
//     L_wait[d](Dilate(G, d+1)) = L_nowait(G).
//   - Theorem 2.1 (L_nowait ⊇ computable): FromDecider encodes words into
//     times and drives edge presence with an arbitrary membership oracle
//     (e.g. a Turing machine), yielding L_nowait(G) = L for any decidable
//     L; FromTM specializes it to the turing package's machines.
package construct

import (
	"fmt"

	"tvgwait/internal/automata"
	"tvgwait/internal/core"
	"tvgwait/internal/tvg"
)

// FromDFA builds a static TVG-automaton (every edge always present,
// latency 1) whose language under every waiting semantics equals the
// DFA's language: since the schedule never changes, waiting cannot enable
// or disable anything. This is the easy inclusion of Theorem 2.2
// (every regular language is in L_wait — and in L_nowait and L_wait[d]).
//
// Words of length at most maxLen are decided exactly with horizon
// StaticHorizonForLength(maxLen).
func FromDFA(d *automata.DFA) *core.Automaton {
	g := tvg.New()
	n := d.NumStates()
	for s := 0; s < n; s++ {
		g.AddNode(fmt.Sprintf("q%d", s))
	}
	for s := 0; s < n; s++ {
		for _, sym := range d.Alphabet() {
			to := d.Step(automata.State(s), sym)
			g.MustAddEdge(tvg.Edge{
				From:     tvg.Node(s),
				To:       tvg.Node(to),
				Label:    sym,
				Presence: tvg.Always{},
				Latency:  tvg.ConstLatency(1),
			})
		}
	}
	a := core.NewAutomaton(g)
	a.AddInitial(tvg.Node(d.Start()))
	for s := 0; s < n; s++ {
		if d.IsAccept(automata.State(s)) {
			a.AddAccepting(tvg.Node(s))
		}
	}
	return a
}

// FromRegex is FromDFA over the compiled, minimized regex.
func FromRegex(pattern string, alphabet []rune) (*core.Automaton, error) {
	nfa, err := automata.CompileRegex(pattern)
	if err != nil {
		return nil, fmt.Errorf("construct: %w", err)
	}
	return FromDFA(nfa.Determinize(alphabet).Minimize()), nil
}

// StaticHorizonForLength returns a horizon sufficient for exact decisions
// on words of length at most maxLen in a FromDFA automaton: each symbol
// advances time by exactly 1.
func StaticHorizonForLength(maxLen int) tvg.Time {
	return tvg.Time(maxLen) + 1
}
