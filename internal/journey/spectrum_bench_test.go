package journey

import (
	"fmt"
	"testing"

	"tvgwait/internal/gen"
	"tvgwait/internal/tvg"
)

// benchLadder8 is the acceptance ladder: K=8 rungs spanning the whole
// expressivity chain, nowait to wait.
func benchLadder8(b *testing.B) Ladder {
	b.Helper()
	ladder, err := NewLadder(
		NoWait(), BoundedWait(1), BoundedWait(2), BoundedWait(4),
		BoundedWait(8), BoundedWait(16), BoundedWait(32), Wait(),
	)
	if err != nil {
		b.Fatal(err)
	}
	return ladder
}

// BenchmarkWaitSpectrum256 is the headline spectrum benchmark: all
// eight rung matrices of the K=8 ladder at N=256 edge-Markovian in one
// sweep per 64-source block. The acceptance target is ≥5× over
// BenchmarkSpectrumIndependent256 (the ledger records the gap in
// BENCH_spectrum.json).
func BenchmarkWaitSpectrum256(b *testing.B) {
	c := markov256(b)
	ladder := benchLadder8(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := WaitSpectrum(c, ladder, 0)
		if _, ok := res.FirstConnected(); !ok {
			b.Fatal("benchmark network must be connected at some rung")
		}
	}
}

// BenchmarkSpectrumIndependent256 is the before: the same eight rungs
// as eight independent AllForemost passes — what a K-bound sweep cost
// prior to the spectrum sweep (and what engine.Metrics paid per cold
// multi-mode request).
func BenchmarkSpectrumIndependent256(b *testing.B) {
	c := markov256(b)
	ladder := benchLadder8(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		connected := false
		for r := 0; r < ladder.Len(); r++ {
			m := AllForemost(c, ladder.Mode(r), 0)
			connected = connected || m.Connected()
		}
		if !connected {
			b.Fatal("benchmark network must be connected at some rung")
		}
	}
}

// markovPersistent256 is the contact-dominated benchmark network:
// long-lived edges (mean lifetime 20 ticks) at N=256 produce ~1M
// contacts over the horizon, so sweep cost is dominated by contact
// iteration — the part the spectrum pays once and K independent passes
// pay K times. All eight rungs are temporally connected.
func markovPersistent256(b *testing.B) *tvg.ContactSet {
	b.Helper()
	c, err := gen.EdgeMarkovian(gen.EdgeMarkovianParams{
		Nodes: 256, PBirth: 0.01, PDeath: 0.05, Horizon: 100, Seed: 1,
	}, nil)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkWaitSpectrum256Connected is the spectrum on the
// contact-dominated connected network — the regime the sharing is
// strongest in (see BENCH_spectrum.json for the recorded ratio).
func BenchmarkWaitSpectrum256Connected(b *testing.B) {
	c := markovPersistent256(b)
	ladder := benchLadder8(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := WaitSpectrum(c, ladder, 0)
		if first, ok := res.FirstConnected(); !ok || first != 0 {
			b.Fatalf("benchmark network must be connected at every rung (first=%d, ok=%v)", first, ok)
		}
	}
}

// BenchmarkSpectrumIndependent256Connected is the same ladder as eight
// independent AllForemost passes on the contact-dominated network.
func BenchmarkSpectrumIndependent256Connected(b *testing.B) {
	c := markovPersistent256(b)
	ladder := benchLadder8(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for r := 0; r < ladder.Len(); r++ {
			AllForemost(c, ladder.Mode(r), 0)
		}
	}
}

// BenchmarkWaitSpectrumRungs charts how the single sweep scales with
// ladder length: the marginal cost of one more rung should be far below
// one more AllForemost pass.
func BenchmarkWaitSpectrumRungs(b *testing.B) {
	c := markov256(b)
	full := []Mode{
		NoWait(), BoundedWait(1), BoundedWait(2), BoundedWait(4),
		BoundedWait(8), BoundedWait(16), BoundedWait(32), Wait(),
	}
	for _, k := range []int{1, 2, 4, 8} {
		ladder, err := NewLadder(full[len(full)-k:]...)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				WaitSpectrum(c, ladder, 0)
			}
		})
	}
}
