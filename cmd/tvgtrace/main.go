// Command tvgtrace imports real contact traces into the tvgwait world:
// it reads `edge,from,to,dep,arr` rows (CSV or TSV, optional header)
// into a compiled ContactSet through the streaming Builder path and
// reports the resulting shape, or emits a versioned snapshot file that
// tvgserve -data-dir recovers like one of its own (internal/store,
// DESIGN.md §12).
//
// Rows sharing an edge label become one edge's schedule (sorted by
// departure); labels appear in first-occurrence order. Node ids are
// dense non-negative integers. Malformed input fails with the 1-based
// line number, so a bad million-row trace points at its own defect.
//
// Importing into a -data-dir that already holds snapshot or WAL state
// for the stream is refused — a fresh seq-1 snapshot would silently
// overwrite the existing generation and fight the WAL at recovery.
// -force supersedes instead: the import takes the next snapshot
// sequence and covers the stream's existing WAL records.
//
// Examples:
//
//	tvgtrace -in trace.csv
//	tvgtrace -in trace.tsv -stream rollernet -data-dir /var/lib/tvgserve
//	zcat trace.csv.gz | tvgtrace -stream rollernet -o rollernet.tvgs
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"tvgwait/internal/store"
	"tvgwait/internal/tvg"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tvgtrace:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("tvgtrace", flag.ContinueOnError)
	in := fs.String("in", "-", "input trace file (CSV or TSV; - = stdin)")
	stream := fs.String("stream", "trace", "stream name stamped into the emitted snapshot")
	out := fs.String("o", "", "write the snapshot image to this exact path (empty = don't)")
	dataDir := fs.String("data-dir", "", "write the snapshot into a tvgserve data directory under its canonical name")
	force := fs.Bool("force", false, "supersede snapshot/WAL state the data dir already holds for this stream")
	nodesFlag := fs.Int("nodes", 0, "node count (0 = 1 + highest node id in the trace)")
	horizonFlag := fs.Int64("horizon", 0, "horizon (0 = latest arrival in the trace)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	cs, edges, err := importTrace(r, *nodesFlag, tvg.Time(*horizonFlag))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "imported %d contacts on %d edges: %d nodes, horizon %d\n",
		cs.NumContacts(), edges, cs.Graph().NumNodes(), cs.Horizon())

	snap := &store.Snapshot{Stream: *stream, Seq: 1, Raw: cs.Raw()}
	if *out != "" {
		img := store.EncodeSnapshot(snap)
		if err := os.WriteFile(*out, img, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "snapshot: %s (%d bytes)\n", *out, len(img))
	}
	if *dataDir != "" {
		// A data dir that already knows this stream must not be silently
		// clobbered: a seq-1/covered-0 snapshot would rename-overwrite the
		// existing generation and make recovery replay the live WAL suffix
		// onto the imported set. Refuse by default; under -force, sequence
		// past every existing snapshot and mark the stream's current WAL
		// records as covered so replay skips them.
		snapSeq, walLSN, err := store.StreamDiskState(*dataDir, *stream)
		if err != nil {
			return err
		}
		if snapSeq > 0 || walLSN > 0 {
			if !*force {
				return fmt.Errorf("data dir %s already holds stream %q (snapshot seq %d, wal lsn %d); use -force to supersede it",
					*dataDir, *stream, snapSeq, walLSN)
			}
			snap.Seq = snapSeq + 1
			snap.CoveredLSN = walLSN
		}
		path, err := store.WriteSnapshotFile(*dataDir, snap)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "snapshot: %s (seq %d)\n", path, snap.Seq)
	}
	return nil
}

// traceEdge accumulates one edge label's rows before the Builder pass.
type traceEdge struct {
	from, to tvg.Node
	contacts []tvg.Contact // Dep/Arr used; sorted before streaming
}

// importTrace parses `edge,from,to,dep,arr` rows and compiles them.
// Every parse or consistency failure carries the 1-based line number.
func importTrace(r io.Reader, nodes int, horizon tvg.Time) (*tvg.ContactSet, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)

	byLabel := make(map[string]*traceEdge)
	var order []string // first-occurrence order of edge labels
	maxNode, maxArr := -1, tvg.Time(-1)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := splitRow(line)
		if lineNo == 1 && isHeader(fields) {
			continue
		}
		if len(fields) != 5 {
			return nil, 0, fmt.Errorf("line %d: want 5 fields (edge,from,to,dep,arr), got %d", lineNo, len(fields))
		}
		label := fields[0]
		from, err := parseNode(fields[1])
		if err != nil {
			return nil, 0, fmt.Errorf("line %d: from: %v", lineNo, err)
		}
		to, err := parseNode(fields[2])
		if err != nil {
			return nil, 0, fmt.Errorf("line %d: to: %v", lineNo, err)
		}
		dep, err := strconv.ParseInt(fields[3], 10, 64)
		if err != nil {
			return nil, 0, fmt.Errorf("line %d: dep: %v", lineNo, err)
		}
		arr, err := strconv.ParseInt(fields[4], 10, 64)
		if err != nil {
			return nil, 0, fmt.Errorf("line %d: arr: %v", lineNo, err)
		}
		if dep < 0 {
			return nil, 0, fmt.Errorf("line %d: departure %d is negative", lineNo, dep)
		}
		if arr <= dep {
			return nil, 0, fmt.Errorf("line %d: arrival %d not after departure %d (latency >= 1)", lineNo, arr, dep)
		}
		e := byLabel[label]
		if e == nil {
			e = &traceEdge{from: from, to: to}
			byLabel[label] = e
			order = append(order, label)
		} else if e.from != from || e.to != to {
			return nil, 0, fmt.Errorf("line %d: edge %q changes endpoints (%d->%d, was %d->%d)",
				lineNo, label, from, to, e.from, e.to)
		}
		e.contacts = append(e.contacts, tvg.Contact{Dep: tvg.Time(dep), Arr: tvg.Time(arr)})
		if int(from) > maxNode {
			maxNode = int(from)
		}
		if int(to) > maxNode {
			maxNode = int(to)
		}
		if tvg.Time(arr) > maxArr {
			maxArr = tvg.Time(arr)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("line %d: %v", lineNo+1, err)
	}
	if len(order) == 0 {
		return nil, 0, fmt.Errorf("trace holds no contacts")
	}
	if nodes == 0 {
		nodes = maxNode + 1
		if nodes < 2 {
			nodes = 2
		}
	}
	if horizon == 0 {
		horizon = maxArr
	}

	b := tvg.NewBuilder()
	b.Reset(nodes, horizon)
	for _, label := range order {
		e := byLabel[label]
		sort.Slice(e.contacts, func(i, j int) bool { return e.contacts[i].Dep < e.contacts[j].Dep })
		sym := tvg.Symbol('e')
		for _, r := range label {
			sym = r
			break
		}
		b.StartEdge(e.from, e.to, sym)
		for i, c := range e.contacts {
			if i > 0 && c.Dep == e.contacts[i-1].Dep {
				return nil, 0, fmt.Errorf("edge %q: duplicate departure %d", label, c.Dep)
			}
			b.Append(c.Dep, c.Arr)
		}
	}
	cs, err := b.Finalize()
	if err != nil {
		return nil, 0, err
	}
	return cs, len(order), nil
}

// splitRow splits on tabs when the line has any, commas otherwise, and
// trims each field.
func splitRow(line string) []string {
	sep := ","
	if strings.ContainsRune(line, '\t') {
		sep = "\t"
	}
	fields := strings.Split(line, sep)
	for i := range fields {
		fields[i] = strings.TrimSpace(fields[i])
	}
	return fields
}

// isHeader recognises the canonical column header, so exported
// spreadsheets import without preprocessing.
func isHeader(fields []string) bool {
	return len(fields) > 0 && strings.EqualFold(fields[0], "edge")
}

func parseNode(s string) (tvg.Node, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, fmt.Errorf("node id %d is negative", n)
	}
	return tvg.Node(n), nil
}
