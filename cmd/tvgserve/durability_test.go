package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"tvgwait/internal/engine"
	"tvgwait/internal/store"
)

// durableServer boots the tvgserve stack over a data directory the way
// main does: recover, install, mount the store as the engine's sink.
func durableServer(t *testing.T, dir string, opts store.Options) (*server, *httptest.Server, *store.Store) {
	t.Helper()
	st, recovered, err := store.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Options{Ingest: st})
	for name, set := range recovered {
		if err := eng.InstallStream(name, set); err != nil {
			t.Fatal(err)
		}
	}
	srv := newServer(time.Minute, 4)
	srv.attachEngine(eng)
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	return srv, ts, st
}

func getStatus(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, strings.TrimSpace(string(body))
}

// TestDurableIngestRecovery pins the serving-layer durability loop:
// batches acked over HTTP survive a stop/start of the whole stack, and
// the restarted server answers /metrics identically and accepts the
// next batch at the recovered watermark.
func TestDurableIngestRecovery(t *testing.T) {
	dir := t.TempDir()
	_, ts, st := durableServer(t, dir, store.Options{Policy: store.SyncAlways})

	if st := postJSON(t, ts.URL+"/contacts", `{"stream": "ring", "nodes": 5, "horizon": 40}`, nil); st != http.StatusOK {
		t.Fatalf("create status %d", st)
	}
	for _, body := range []string{
		`{"stream": "ring", "contacts": [
			{"from": 0, "to": 1, "dep": 1, "arr": 2}, {"from": 1, "to": 2, "dep": 3, "arr": 4}]}`,
		`{"stream": "ring", "contacts": [
			{"from": 2, "to": 3, "dep": 5, "arr": 6}, {"from": 3, "to": 4, "dep": 7, "arr": 8},
			{"from": 4, "to": 0, "dep": 9, "arr": 10}]}`,
	} {
		if st := postJSON(t, ts.URL+"/contacts", body, nil); st != http.StatusOK {
			t.Fatalf("append status %d", st)
		}
	}
	metricsBody := `{"graph": {"model": "stream", "stream": "ring"}, "modes": ["nowait", "wait"]}`
	var before map[string]any
	if st := postJSON(t, ts.URL+"/metrics", metricsBody, &before); st != http.StatusOK {
		t.Fatalf("metrics status %d", st)
	}
	ts.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	_, ts2, st2 := durableServer(t, dir, store.Options{Policy: store.SyncAlways})
	defer st2.Close()
	var after map[string]any
	if code := postJSON(t, ts2.URL+"/metrics", metricsBody, &after); code != http.StatusOK {
		t.Fatalf("post-recovery metrics status %d", code)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("metrics diverged across restart:\nbefore %v\nafter  %v", before, after)
	}
	var rep engine.IngestReport
	if code := postJSON(t, ts2.URL+"/contacts",
		`{"stream": "ring", "contacts": [{"from": 0, "to": 2, "dep": 11, "arr": 12}]}`, &rep); code != http.StatusOK {
		t.Fatalf("post-recovery append status %d", code)
	}
	if rep.Revision != 3 || rep.Contacts != 6 {
		t.Fatalf("post-recovery report %+v", rep)
	}
}

// TestRecoveringGate pins the readiness/liveness split: while the data
// directory is being replayed the server answers /livez 200 but
// /healthz 503 "recovering", and refuses API work with 503 — then
// flips atomically once the engine attaches.
func TestRecoveringGate(t *testing.T) {
	srv := newServer(time.Minute, 2)
	srv.recovering.Store(true)
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	if code, body := getStatus(t, ts.URL+"/healthz"); code != http.StatusServiceUnavailable || body != "recovering" {
		t.Fatalf("/healthz while recovering: %d %q", code, body)
	}
	if code, body := getStatus(t, ts.URL+"/livez"); code != http.StatusOK || body != "ok" {
		t.Fatalf("/livez while recovering: %d %q", code, body)
	}
	if code := postJSON(t, ts.URL+"/contacts", `{"stream": "s", "nodes": 3, "horizon": 10}`, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("/contacts while recovering: %d, want 503", code)
	}
	if code := postJSON(t, ts.URL+"/metrics", `{"graph": {"model": "stream", "stream": "s"}, "modes": ["wait"]}`, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("/metrics while recovering: %d, want 503", code)
	}

	srv.attachEngine(engine.New(engine.Options{}))
	srv.recovering.Store(false)
	if code, body := getStatus(t, ts.URL+"/healthz"); code != http.StatusOK || body != "ok" {
		t.Fatalf("/healthz after attach: %d %q", code, body)
	}
	if code := postJSON(t, ts.URL+"/contacts", `{"stream": "s", "nodes": 3, "horizon": 10}`, nil); code != http.StatusOK {
		t.Fatalf("/contacts after attach: %d", code)
	}
}

// TestDrainFlushesWAL pins the shutdown ordering contract: with the
// batch fsync policy (acks can run ahead of fsync), the drain path's
// Sync+Close lands every acked batch on disk before the process exits.
func TestDrainFlushesWAL(t *testing.T) {
	dir := t.TempDir()
	srv, ts, st := durableServer(t, dir, store.Options{Policy: store.SyncBatch})
	if code := postJSON(t, ts.URL+"/contacts", `{"stream": "s", "nodes": 4, "horizon": 30, "contacts": [
		{"from": 0, "to": 1, "dep": 1, "arr": 2}, {"from": 1, "to": 2, "dep": 3, "arr": 5}]}`, nil); code != http.StatusOK {
		t.Fatalf("ingest status %d", code)
	}
	// The drain sequence from main: draining flip, listener down, WAL
	// sync, store close, engine close.
	srv.draining.Store(true)
	if code, body := getStatus(t, ts.URL+"/healthz"); code != http.StatusServiceUnavailable || body != "draining" {
		t.Fatalf("/healthz while draining: %d %q", code, body)
	}
	ts.Close()
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	srv.engine().Close()

	_, recovered, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	set := recovered["s"]
	if set == nil || set.NumContacts() != 2 || set.Revision() != 1 {
		t.Fatalf("drained batch lost: %+v", recovered)
	}
}

// TestCompactorNoGoroutineLeak pins the compactor's lifecycle: starting
// and closing the durable stack repeatedly leaves no goroutine behind
// (the leak window the drain path's ordered Close exists to prevent).
func TestCompactorNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		dir := t.TempDir()
		st, _, err := store.Open(dir, store.Options{Policy: store.SyncBatch})
		if err != nil {
			t.Fatal(err)
		}
		st.StartCompactor(time.Millisecond)
		eng := engine.New(engine.Options{Ingest: st})
		if _, err := eng.CreateStream("s", 3, 10); err != nil {
			t.Fatal(err)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		eng.Close()
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines grew from %d to %d after store close", before, runtime.NumGoroutine())
}
