package core

import (
	"fmt"
	"testing"

	"tvgwait/internal/journey"
	"tvgwait/internal/tvg"
)

// benchAutomaton is a 4-node periodic automaton with both labels.
func benchAutomaton(b *testing.B) *Automaton {
	b.Helper()
	g := tvg.New()
	g.AddNodes(4)
	patterns := [][]bool{
		{true, false, true}, {false, true}, {true}, {true, false, false, true},
		{false, false, true}, {true, true, false},
	}
	edges := []struct {
		from, to int
		label    rune
	}{
		{0, 1, 'a'}, {1, 2, 'b'}, {2, 3, 'a'}, {3, 0, 'b'}, {0, 2, 'b'}, {1, 3, 'a'},
	}
	for i, e := range edges {
		pres, err := tvg.NewPeriodicPresence(patterns[i])
		if err != nil {
			b.Fatal(err)
		}
		g.MustAddEdge(tvg.Edge{
			From: tvg.Node(e.from), To: tvg.Node(e.to), Label: e.label,
			Presence: pres, Latency: tvg.ConstLatency(1),
		})
	}
	a := NewAutomaton(g)
	a.AddInitial(0)
	a.AddAccepting(3)
	return a
}

// Ablation: membership cost as the horizon grows, per waiting semantics.
// Wait mode scans full departure windows, so it is the most
// horizon-sensitive — this quantifies the cost of the waiting adversary.
func BenchmarkAcceptsHorizonSweep(b *testing.B) {
	a := benchAutomaton(b)
	for _, horizon := range []tvg.Time{20, 80, 320} {
		for _, mode := range []journey.Mode{journey.NoWait(), journey.BoundedWait(4), journey.Wait()} {
			dec, err := NewDecider(a, mode, horizon)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("h=%d/%s", horizon, mode), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					dec.Accepts("abab")
				}
			})
		}
	}
}

func BenchmarkAcceptedWords(b *testing.B) {
	a := benchAutomaton(b)
	dec, err := NewDecider(a, journey.Wait(), 40)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = dec.AcceptedWords(6)
	}
}

func BenchmarkWitness(b *testing.B) {
	a := benchAutomaton(b)
	dec, err := NewDecider(a, journey.Wait(), 60)
	if err != nil {
		b.Fatal(err)
	}
	words := dec.AcceptedWords(6)
	if len(words) == 0 {
		b.Fatal("no accepted words")
	}
	word := words[len(words)-1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := dec.Witness(word); !ok {
			b.Fatal("witness must exist")
		}
	}
}

func BenchmarkConfigInclusion(b *testing.B) {
	a := benchAutomaton(b)
	dec, err := NewDecider(a, journey.Wait(), 40)
	if err != nil {
		b.Fatal(err)
	}
	o := NewConfigInclusion(dec)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.LE("ab", "abab")
	}
}
