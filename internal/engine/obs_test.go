package engine

import (
	"context"
	"strings"
	"testing"

	"tvgwait/internal/obs"
)

// TestEngineObsWiring exercises the full telemetry surface of an
// instrumented engine: cache hit/miss/eviction counters, byte and entry
// gauges, pool occupancy, sweep stats and the per-request cache trace.
func TestEngineObsWiring(t *testing.T) {
	r := obs.NewRegistry()
	e := New(Options{Workers: 2, CacheSize: 2, Obs: r})
	spec := markovSpec()
	ctx := context.Background()

	// Cold run: every replicate's schedule is a miss.
	mustRun(t, e, spec)
	hits, misses, _, _ := e.cache.counters()
	if misses.Value() != int64(spec.Replicates) {
		t.Fatalf("cold run: schedule misses = %d, want %d", misses.Value(), spec.Replicates)
	}
	if got := e.cache.bytes(); got <= 0 {
		t.Fatalf("schedule cache bytes = %d after cold run, want > 0", got)
	}

	// CacheSize 2 with 3 replicates: the cold run must have evicted.
	_, _, _, evictions := e.cache.counters()
	if evictions.Value() != int64(spec.Replicates-2) {
		t.Fatalf("evictions = %d, want %d", evictions.Value(), spec.Replicates-2)
	}

	// Warm ContactSet on the resident newest entry is a pure hit.
	before := hits.Value()
	if _, err := e.ContactSet(spec.Graph, graphSeed(spec.Seed, spec.Replicates-1)); err != nil {
		t.Fatal(err)
	}
	if hits.Value() != before+1 {
		t.Fatalf("warm lookup: hits %d -> %d, want +1", before, hits.Value())
	}

	// Metrics runs the sweeps and must report block work.
	mreq := MetricsRequest{Graph: spec.Graph, Seed: 1, Modes: []string{"wait"}}
	if _, err := e.Metrics(ctx, mreq); err != nil {
		t.Fatal(err)
	}
	if e.sweeps.Blocks.Value() <= 0 {
		t.Fatalf("sweep Blocks = %d after Metrics, want > 0", e.sweeps.Blocks.Value())
	}

	// Cache trace: first metrics request under a trace is warm only if
	// repeated; a fresh seed must record a miss.
	tctx, tr := WithCacheTrace(ctx)
	if _, err := e.Metrics(tctx, MetricsRequest{Graph: spec.Graph, Seed: 99, Modes: []string{"wait"}}); err != nil {
		t.Fatal(err)
	}
	if !tr.Touched() || tr.Warm() {
		t.Fatalf("cold metrics trace: touched=%v warm=%v (hits=%d misses=%d)",
			tr.Touched(), tr.Warm(), tr.Hits(), tr.Misses())
	}
	tctx2, tr2 := WithCacheTrace(ctx)
	if _, err := e.Metrics(tctx2, MetricsRequest{Graph: spec.Graph, Seed: 99, Modes: []string{"wait"}}); err != nil {
		t.Fatal(err)
	}
	if !tr2.Warm() {
		t.Fatalf("repeated metrics trace not warm: hits=%d misses=%d", tr2.Hits(), tr2.Misses())
	}

	// Tasks ran through the instrumented pool: occupancy is back to zero
	// and every task priced into the histogram.
	if e.busy.Value() != 0 {
		t.Fatalf("tasks_inflight = %d at rest, want 0", e.busy.Value())
	}
	if e.taskDur.Count() <= 0 {
		t.Fatal("task-duration histogram empty after a run")
	}
	if e.buildDur.Count() <= 0 {
		t.Fatal("build-duration histogram empty after cold builds")
	}

	// The registry carries the full contract surface.
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`tvg_engine_cache_hits_total{cache="schedule"}`,
		`tvg_engine_cache_misses_total{cache="metrics"}`,
		`tvg_engine_cache_evictions_total{cache="spectra"}`,
		`tvg_engine_cache_entries{cache="schedule"}`,
		`tvg_engine_cache_bytes{cache="schedule"}`,
		"tvg_engine_tasks_inflight",
		"tvg_engine_task_ns_count",
		"tvg_engine_build_ns_count",
		"tvg_sweep_blocks_total",
		"tvg_sweep_contacts_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteProm output missing %q", want)
		}
	}
}

// TestEngineObsOptional pins that an un-wired engine still works and
// still tallies (Options.Obs only exposes, never enables).
func TestEngineObsOptional(t *testing.T) {
	e := New(Options{Workers: 2})
	mustRun(t, e, markovSpec())
	_, misses, _, _ := e.cache.counters()
	if misses.Value() <= 0 {
		t.Fatal("un-wired engine did not tally cache misses")
	}
}

// TestCacheTraceNil pins that trace-free contexts cost nothing and that
// the nil receiver is safe (call sites never branch).
func TestCacheTraceNil(t *testing.T) {
	var tr *CacheTrace
	tr.record(true) // must not panic
	if traceFrom(context.Background()) != nil {
		t.Fatal("traceFrom on a bare context should be nil")
	}
}
