package tvgwait

import (
	"context"

	"tvgwait/internal/anbn"
	"tvgwait/internal/automata"
	"tvgwait/internal/construct"
	"tvgwait/internal/core"
	"tvgwait/internal/dtn"
	"tvgwait/internal/engine"
	"tvgwait/internal/journey"
	"tvgwait/internal/lang"
	"tvgwait/internal/obs"
	"tvgwait/internal/tvg"
)

// Core model types, re-exported for single-import use.
type (
	// Time is a discrete instant (ticks from 0).
	Time = tvg.Time
	// Symbol is an edge label.
	Symbol = tvg.Symbol
	// Node identifies a vertex of a Graph.
	Node = tvg.Node
	// EdgeID identifies an edge of a Graph.
	EdgeID = tvg.EdgeID
	// Edge is a labeled, directed, time-varying edge.
	Edge = tvg.Edge
	// Graph is a time-varying graph G = (V, E, T, ρ, ζ).
	Graph = tvg.Graph
	// ContactSet is a finite-horizon compiled schedule: the flat CSR
	// contact array every decision procedure runs on.
	ContactSet = tvg.ContactSet
	// Contact is one usable (edge, departure) pair of a ContactSet.
	Contact = tvg.Contact
	// Compiled is the pre-CSR name of ContactSet, kept as an alias.
	Compiled = tvg.Compiled
	// Builder streams contacts in (edge, departure) order and finalises
	// them into a ContactSet in one pass — the allocation-free
	// construction path for generated schedules (see DESIGN.md §6).
	Builder = tvg.Builder
	// Presence is an edge availability schedule (ρ restricted to an edge).
	Presence = tvg.Presence
	// Latency is an edge crossing-time schedule (ζ restricted to an edge).
	Latency = tvg.Latency

	// Mode is a waiting semantics: NoWait, Wait or BoundedWait(d).
	Mode = journey.Mode
	// Journey is a path over time (a walk plus departure times).
	Journey = journey.Journey
	// Hop is one edge traversal of a Journey.
	Hop = journey.Hop
	// ArrivalMatrix is the all-pairs foremost-arrival table computed by
	// AllForemost in one bit-parallel contact sweep per 64 sources.
	ArrivalMatrix = journey.ArrivalMatrix
	// ReachMatrix is the packed all-pairs temporal reachability
	// relation computed by ReachabilityMatrix.
	ReachMatrix = journey.ReachMatrix
	// Ladder is a normalized ladder of waiting budgets — the paper's
	// inclusion chain L_nowait ⊆ L_wait[d] ⊆ L_wait — built by
	// NewLadder and swept in one pass by WaitSpectrum.
	Ladder = journey.Ladder
	// SpectrumResult holds one foremost-arrival matrix per ladder rung,
	// computed by a single wait-spectrum contact sweep.
	SpectrumResult = journey.SpectrumResult

	// Automaton is a TVG-automaton A(G) = (Σ, S, I, E, F).
	Automaton = core.Automaton
	// Decider is a compiled membership decision procedure.
	Decider = core.Decider

	// Language is a decidable formal language (alphabet + membership).
	Language = lang.Language

	// NFA and DFA are the classical automata used as regularity witnesses.
	NFA = automata.NFA
	DFA = automata.DFA

	// Message and DeliveryResult belong to the store-carry-forward
	// simulator (the paper's motivating setting).
	Message = dtn.Message
	// DeliveryResult describes one simulated message.
	DeliveryResult = dtn.Result

	// Engine is the concurrent batch-simulation engine; EngineOptions
	// configures it.
	Engine = engine.Engine
	// EngineOptions configures NewEngine.
	EngineOptions = engine.Options
	// ScenarioSpec declares one batch scenario (network model, waiting
	// modes, workload, replication, seed).
	ScenarioSpec = engine.ScenarioSpec
	// GraphSpec declares a generated network inside a ScenarioSpec.
	GraphSpec = engine.GraphSpec
	// Report is the deterministic aggregate of one engine run.
	Report = engine.Report
	// ModeReport is one waiting mode's aggregated unicast row.
	ModeReport = engine.ModeReport
	// BroadcastModeReport is one waiting mode's aggregated broadcast row.
	BroadcastModeReport = engine.BroadcastModeReport
	// JourneyRequest asks the engine for one optimal journey.
	JourneyRequest = engine.JourneyRequest
	// JourneyReport describes the journey found.
	JourneyReport = engine.JourneyReport
	// MetricsRequest asks the engine for all-pairs journey metrics
	// (connectivity, diameter, eccentricity distribution) per mode.
	MetricsRequest = engine.MetricsRequest
	// MetricsReport aggregates the per-mode metric rows.
	MetricsReport = engine.MetricsReport
	// ModeMetrics is one waiting mode's all-pairs metrics row.
	ModeMetrics = engine.ModeMetrics
	// SpectrumRequest asks the engine for the waiting spectrum of a
	// generated network: per-rung metrics for a whole budget ladder in
	// one sweep and one cache entry.
	SpectrumRequest = engine.SpectrumRequest
	// SpectrumReport is the per-rung metric table of one network.
	SpectrumReport = engine.SpectrumReport

	// Registry is the telemetry registry: zero-allocation counters,
	// gauges and histograms with Prometheus text and JSON varz renderers
	// (see DESIGN.md §8). Pass one as EngineOptions.Obs to expose the
	// engine's cache, pool and sweep series.
	Registry = obs.Registry
	// SweepStats aggregates the bit-parallel sweeps' telemetry: blocks,
	// contacts swept, early exits, sparse-grid fallbacks, due-bucket
	// expiries, spectrum rung retirements, lane retirements and the
	// most recent sweep width.
	SweepStats = obs.SweepStats
	// CacheTrace accumulates one request's engine-cache outcomes
	// (attach with WithCacheTrace).
	CacheTrace = engine.CacheTrace
)

// Graph construction.

// NewGraph returns an empty time-varying graph.
func NewGraph() *Graph { return tvg.New() }

// Compile scans a graph's schedules over [0, horizon]; all decision
// procedures operate on the compiled form.
func Compile(g *Graph, horizon Time) (*Compiled, error) { return tvg.Compile(g, horizon) }

// NewBuilder returns an empty contact-set builder. Reset it, stream
// edges and contacts in (edge, departure) order, and Finalize into a
// ContactSet without building a Graph first; a pooled Builder reused
// across replicates reaches zero steady-state arena allocation.
func NewBuilder() *Builder { return tvg.NewBuilder() }

// Schedule helpers.

// Always returns a presence schedule that is available at every time.
func Always() Presence { return tvg.Always{} }

// Never returns a presence schedule that is never available.
func Never() Presence { return tvg.Never{} }

// At returns a presence schedule available exactly at the given instants.
func At(times ...Time) Presence { return tvg.NewTimeSet(times...) }

// During returns a presence schedule available on [start, end).
func During(start, end Time) Presence {
	return tvg.NewIntervals(tvg.Interval{Start: start, End: end})
}

// Periodic returns a presence schedule repeating the pattern forever.
func Periodic(pattern []bool) (Presence, error) { return tvg.NewPeriodicPresence(pattern) }

// ConstLatency returns a fixed crossing time.
func ConstLatency(d Time) Latency { return tvg.ConstLatency(d) }

// Waiting semantics.

// NoWait returns the direct-journey semantics (no buffering).
func NoWait() Mode { return journey.NoWait() }

// Wait returns the indirect-journey semantics (unbounded buffering).
func Wait() Mode { return journey.Wait() }

// BoundedWait returns the semantics allowing pauses of at most d ticks.
func BoundedWait(d Time) Mode { return journey.BoundedWait(d) }

// Automata over TVGs.

// NewAutomaton wraps a graph as a TVG-automaton.
func NewAutomaton(g *Graph) *Automaton { return core.NewAutomaton(g) }

// NewDecider compiles a membership decision procedure for the automaton
// under the given waiting semantics and horizon.
func NewDecider(a *Automaton, mode Mode, horizon Time) (*Decider, error) {
	return core.NewDecider(a, mode, horizon)
}

// Journey metrics.

// Foremost returns an earliest-arrival journey from src to dst departing
// no earlier than t0.
func Foremost(c *Compiled, mode Mode, src, dst Node, t0 Time) (Journey, Time, bool) {
	return journey.Foremost(c, mode, src, dst, t0)
}

// MinHop returns a fewest-hops journey from src to dst.
func MinHop(c *Compiled, mode Mode, src, dst Node, t0 Time) (Journey, int, bool) {
	return journey.MinHop(c, mode, src, dst, t0)
}

// Fastest returns a journey minimizing departure-to-arrival span.
func Fastest(c *Compiled, mode Mode, src, dst Node, t0 Time) (Journey, Time, bool) {
	return journey.Fastest(c, mode, src, dst, t0)
}

// TemporallyConnected reports whether every ordered node pair is joined by
// a feasible journey. It short-circuits inside a bit-parallel
// multi-source sweep (64 sources per contact pass).
func TemporallyConnected(c *Compiled, mode Mode, t0 Time) bool {
	return journey.TemporallyConnected(c, mode, t0)
}

// TemporalDiameter returns the worst foremost delay between any ordered
// node pair, or ok=false if the graph is not temporally connected. It
// runs O(⌈N/64⌉) bit-parallel contact sweeps instead of N² Foremost
// searches.
func TemporalDiameter(c *Compiled, mode Mode, t0 Time) (Time, bool) {
	return journey.TemporalDiameter(c, mode, t0)
}

// AllForemost computes the all-pairs foremost-arrival matrix — the
// batch equivalent of N² Foremost calls, bit-identical to them — in one
// word-packed contact sweep per 64-source block.
func AllForemost(c *Compiled, mode Mode, t0 Time) *ArrivalMatrix {
	return journey.AllForemost(c, mode, t0)
}

// ReachabilityMatrix computes the packed all-pairs temporal
// reachability relation (per source, exactly ReachableSet).
func ReachabilityMatrix(c *Compiled, mode Mode, t0 Time) *ReachMatrix {
	return journey.ReachabilityMatrix(c, mode, t0)
}

// AllForemostParallel is AllForemost with the 64-source blocks fanned
// out across up to `workers` goroutines. The result is bit-identical
// to the sequential sweep at any worker count.
func AllForemostParallel(c *Compiled, mode Mode, t0 Time, workers int) *ArrivalMatrix {
	return journey.AllForemostParallel(c, mode, t0, workers)
}

// ReachabilityMatrixParallel is ReachabilityMatrix with the 64-source
// blocks fanned out across up to `workers` goroutines; bit-identical
// at any worker count.
func ReachabilityMatrixParallel(c *Compiled, mode Mode, t0 Time, workers int) *ReachMatrix {
	return journey.ReachabilityMatrixParallel(c, mode, t0, workers)
}

// NewLadder normalizes waiting modes into a Ladder: sorted from least
// to most permissive, duplicates (wait[0] ≡ nowait included) collapsed.
func NewLadder(modes ...Mode) (Ladder, error) { return journey.NewLadder(modes...) }

// WaitSpectrum computes the all-pairs foremost-arrival matrix of every
// ladder rung in ONE bit-parallel contact sweep per 64-source block —
// the batch equivalent of Ladder.Len() AllForemost calls, bit-identical
// to them per rung.
func WaitSpectrum(c *Compiled, ladder Ladder, t0 Time) *SpectrumResult {
	return journey.WaitSpectrum(c, ladder, t0)
}

// WaitSpectrumParallel is WaitSpectrum with the 64-source blocks fanned
// out across up to `workers` goroutines; bit-identical at any worker
// count.
func WaitSpectrumParallel(c *Compiled, ladder Ladder, t0 Time, workers int) *SpectrumResult {
	return journey.WaitSpectrumParallel(c, ladder, t0, workers)
}

// EnumerateJourneys lists every feasible journey from src (departing no
// earlier than t0) with at most maxHops hops, up to limit entries
// (limit <= 0 means unlimited); the bool reports truncation.
func EnumerateJourneys(c *Compiled, mode Mode, src Node, t0 Time, maxHops, limit int) ([]Journey, bool) {
	return journey.Enumerate(c, mode, src, t0, maxHops, limit)
}

// Paper constructions.

// Figure1 builds the paper's Figure 1 / Table 1 automaton for primes p, q:
// L_nowait(G) = {aⁿbⁿ : n ≥ 1}.
func Figure1(p, q int64) (*Automaton, error) { return anbn.New(anbn.Params{P: p, Q: q}) }

// Figure1Horizon returns a horizon deciding all words of length ≤ maxLen
// exactly on the Figure 1 automaton.
func Figure1Horizon(p, q int64, maxLen int) (Time, error) {
	return anbn.HorizonForLength(anbn.Params{P: p, Q: q}, maxLen)
}

// FromRegex builds a static TVG-automaton recognizing the regular pattern
// under every waiting semantics (Theorem 2.2, easy half).
func FromRegex(pattern string, alphabet []rune) (*Automaton, error) {
	return construct.FromRegex(pattern, alphabet)
}

// FromDecider builds a TVG-automaton with L_nowait(G) = L for any
// decidable language L (Theorem 2.1).
func FromDecider(l Language) (*Automaton, error) { return construct.FromDecider(l) }

// LanguageDFA extracts the minimal DFA of the automaton's horizon-bounded
// language (Theorem 2.2, hard half: the regularity witness).
func LanguageDFA(a *Automaton, mode Mode, horizon Time, alphabet []rune) (*DFA, error) {
	return construct.LanguageDFA(a, mode, horizon, alphabet)
}

// Dilate time-expands an automaton by factor k; Dilate(a, d+1) makes
// wait[d] equivalent to nowait (Theorem 2.3).
func Dilate(a *Automaton, k Time) (*Automaton, error) { return construct.DilateAutomaton(a, k) }

// IntersectDFA builds the product automaton with L_mode(result) =
// L_mode(a) ∩ L(d) for every waiting semantics — regular filtering of TVG
// languages.
func IntersectDFA(a *Automaton, d *DFA) (*Automaton, error) {
	return construct.IntersectDFA(a, d)
}

// Store-carry-forward simulation.

// Deliver floods one message under the buffering policy given by mode.
func Deliver(c *Compiled, mode Mode, msg Message) (DeliveryResult, error) {
	return dtn.Simulate(c, mode, msg)
}

// Batch-simulation engine.

// NewEngine returns a concurrent batch-simulation engine. Run a
// ScenarioSpec with (*Engine).Run; for a fixed spec and seed the Report
// is byte-identical at any worker count.
func NewEngine(opts EngineOptions) *Engine { return engine.New(opts) }

// ParseMode parses a waiting-mode name ("nowait", "wait", "wait:D" or
// "wait[D]") as used in ScenarioSpec.Modes.
func ParseMode(s string) (Mode, error) { return engine.ParseMode(s) }

// ParseModeList parses a comma-separated mode list, e.g. "nowait,wait:2,wait".
func ParseModeList(s string) ([]Mode, error) { return engine.ParseModeList(s) }

// Telemetry (see DESIGN.md §8).

// NewRegistry returns an empty telemetry registry. Registration is
// startup-time configuration; the instruments' hot-path operations are
// lock-free and allocation-free.
func NewRegistry() *Registry { return obs.NewRegistry() }

// WithCacheTrace derives a context whose engine cache lookups record
// into the returned trace — per-request warm/cold attribution.
func WithCacheTrace(ctx context.Context) (context.Context, *CacheTrace) {
	return engine.WithCacheTrace(ctx)
}

// AllForemostStats is AllForemostParallel with an explicit sweep width
// — the block's 64-source lane-word count, one of {1, 2, 4, 8}, 0 for
// automatic — and optional sweep telemetry folded into st once per
// block (nil st is free). Results are bit-identical at every width.
func AllForemostStats(c *Compiled, mode Mode, t0 Time, workers, width int, st *SweepStats) *ArrivalMatrix {
	return journey.AllForemostStats(c, mode, t0, workers, width, st)
}

// WaitSpectrumStats is WaitSpectrumParallel with an explicit sweep
// width (see AllForemostStats; 0 = automatic) and optional sweep
// telemetry folded into st once per block (nil st is free). Results
// are bit-identical at every width.
func WaitSpectrumStats(c *Compiled, ladder Ladder, t0 Time, workers, width int, st *SweepStats) *SpectrumResult {
	return journey.WaitSpectrumStats(c, ladder, t0, workers, width, st)
}

// Cancellation and overload control (see DESIGN.md §10).

// ErrCanceled tags every sweep or flood aborted by its context; errors
// also wrap the context's own error, so both errors.Is(err, ErrCanceled)
// and errors.Is(err, context.Canceled / DeadlineExceeded) match.
var ErrCanceled = journey.ErrCanceled

// ErrTooLarge tags engine requests whose predicted result footprint
// exceeds EngineOptions.MaxCacheBytes; rejected at admission, before
// any matrix memory is allocated.
var ErrTooLarge = engine.ErrTooLarge

// AllForemostCtx is AllForemostStats with a cancellation checkpoint:
// a cancelled ctx aborts the sweep within ~one checkpoint interval
// (~64K contacts) and returns an error wrapping ErrCanceled. With a
// ctx that never cancels, results are bit-identical to AllForemost.
func AllForemostCtx(ctx context.Context, c *Compiled, mode Mode, t0 Time, workers, width int, st *SweepStats) (*ArrivalMatrix, error) {
	return journey.AllForemostCtx(ctx, c, mode, t0, workers, width, st)
}

// WaitSpectrumCtx is WaitSpectrumStats with a cancellation checkpoint
// (see AllForemostCtx).
func WaitSpectrumCtx(ctx context.Context, c *Compiled, ladder Ladder, t0 Time, workers, width int, st *SweepStats) (*SpectrumResult, error) {
	return journey.WaitSpectrumCtx(ctx, c, ladder, t0, workers, width, st)
}

// DeliverCtx is Deliver with a cancellation checkpoint threaded into
// the epidemic flood (see AllForemostCtx).
func DeliverCtx(ctx context.Context, c *Compiled, mode Mode, msg Message) (DeliveryResult, error) {
	return dtn.SimulateCtx(ctx, c, mode, msg)
}

// Incremental suffix-replay: live-filled contact sets and resumable
// sweeps (see DESIGN.md §11).

type (
	// ContactRecord is one contact of an append batch: endpoints and
	// times, no edge id — AppendContacts assigns fresh ids per batch.
	ContactRecord = tvg.ContactRecord
	// SweepCheckpoint is a resumable bit-parallel sweep frozen at a
	// revision's watermark: resuming on a later revision of the same
	// lineage replays only the appended suffix, bit-identical to a cold
	// sweep of the full set.
	SweepCheckpoint = journey.SweepCheckpoint
	// FloodCheckpoint is the epidemic-flood analogue of SweepCheckpoint.
	FloodCheckpoint = dtn.FloodCheckpoint
	// BroadcastResult summarises one epidemic broadcast flood.
	BroadcastResult = dtn.BroadcastResult
)

// AllForemostCheckpointed is AllForemostStats plus a SweepCheckpoint
// frozen at c's watermark: after extending c with AppendContacts (or
// Builder.Extend), ck.AllForemost(c2, ...) replays only the appended
// suffix and returns the matrix a cold sweep of c2 would — bit-identical
// at every width.
func AllForemostCheckpointed(c *Compiled, mode Mode, t0 Time, workers, width int, st *SweepStats) (*ArrivalMatrix, *SweepCheckpoint, error) {
	return journey.AllForemostCheckpointed(c, mode, t0, workers, width, st)
}

// ReachabilityMatrixCheckpointed is ReachabilityMatrix plus a resumable
// checkpoint (see AllForemostCheckpointed).
func ReachabilityMatrixCheckpointed(c *Compiled, mode Mode, t0 Time, workers, width int, st *SweepStats) (*ReachMatrix, *SweepCheckpoint, error) {
	return journey.ReachabilityMatrixCheckpointed(c, mode, t0, workers, width, st)
}

// WaitSpectrumCheckpointed is WaitSpectrumStats plus a resumable
// checkpoint covering every rung of the ladder: one suffix replay
// refreshes all rung matrices (see AllForemostCheckpointed).
func WaitSpectrumCheckpointed(c *Compiled, ladder Ladder, t0 Time, workers, width int, st *SweepStats) (*SpectrumResult, *SweepCheckpoint, error) {
	return journey.WaitSpectrumCheckpointed(c, ladder, t0, workers, width, st)
}

// BroadcastCheckpointed floods from src and returns a FloodCheckpoint
// that resumes the flood over appended suffixes, bit-identical to a
// cold flood of the extended set.
func BroadcastCheckpointed(c *Compiled, mode Mode, src Node, t0 Time) (BroadcastResult, *FloodCheckpoint, error) {
	return dtn.BroadcastCheckpointed(c, mode, src, t0)
}
