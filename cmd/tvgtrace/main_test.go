package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tvgwait/internal/store"
)

const sampleCSV = `edge,from,to,dep,arr
a,0,1,1,2
a,0,1,4,6
b,1,2,3,4
c,2,0,5,7
`

// TestImportCSV pins the happy path: grouped edges, inferred shape,
// contacts queryable through the compiled set.
func TestImportCSV(t *testing.T) {
	cs, edges, err := importTrace(strings.NewReader(sampleCSV), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if edges != 3 || cs.NumContacts() != 4 {
		t.Fatalf("imported %d edges, %d contacts", edges, cs.NumContacts())
	}
	if cs.Graph().NumNodes() != 3 || cs.Horizon() != 7 {
		t.Fatalf("shape %d nodes, horizon %d", cs.Graph().NumNodes(), cs.Horizon())
	}
}

// TestImportTSVAndComments pins the alternative framings: tab
// separators, comment lines, blank lines, no header.
func TestImportTSVAndComments(t *testing.T) {
	tsv := "# a comment\n\na\t0\t1\t1\t2\n\nb\t1\t0\t2\t4\n"
	cs, edges, err := importTrace(strings.NewReader(tsv), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if edges != 2 || cs.NumContacts() != 2 {
		t.Fatalf("imported %d edges, %d contacts", edges, cs.NumContacts())
	}
}

// TestImportErrorsCarryLineNumbers pins the failure contract: every
// malformed row is reported with its 1-based line number.
func TestImportErrorsCarryLineNumbers(t *testing.T) {
	cases := []struct {
		name, input, wantSub string
	}{
		{"short row", "edge,from,to,dep,arr\na,0,1,1\n", "line 2"},
		{"bad node", "a,zero,1,1,2\n", "line 1"},
		{"negative node", "a,-1,1,1,2\n", "line 1"},
		{"bad dep", "a,0,1,x,2\n", "line 1"},
		{"zero latency", "a,0,1,3,3\n", "line 1"},
		{"negative dep", "a,0,1,-4,2\n", "line 1"},
		{"endpoint flip", "a,0,1,1,2\na,1,0,3,4\n", "line 2"},
		{"empty", "", "no contacts"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := importTrace(strings.NewReader(tc.input), 0, 0)
			if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("want error containing %q, got %v", tc.wantSub, err)
			}
		})
	}
}

// TestEmitSnapshotRoundTrip pins the interchange promise: the emitted
// snapshot restores to the same CSR the importer compiled, through
// both -o and -data-dir paths.
func TestEmitSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "in.csv")
	if err := os.WriteFile(csv, []byte(sampleCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	exact := filepath.Join(dir, "out.tvgs")
	if err := run([]string{"-in", csv, "-stream", "imported", "-o", exact, "-data-dir", dir}, &out); err != nil {
		t.Fatal(err)
	}
	want, _, err := importTrace(strings.NewReader(sampleCSV), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{exact, store.SnapshotPath(dir, "imported", 1)} {
		snap, got, err := store.ReadSnapshotFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if snap.Stream != "imported" || snap.Seq != 1 {
			t.Fatalf("%s: metadata %+v", path, snap)
		}
		if got.NumContacts() != want.NumContacts() || got.Revision() != want.Revision() {
			t.Fatalf("%s: restored %d contacts rev %d", path, got.NumContacts(), got.Revision())
		}
	}
	// And tvgserve-style recovery sees it as a live stream.
	st, recovered, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	set := recovered["imported"]
	if set == nil || set.NumContacts() != want.NumContacts() {
		t.Fatalf("recovery missed the imported stream: %v", recovered)
	}
	if set.LastDep() != want.LastDep() {
		t.Fatalf("watermark %d, want %d", set.LastDep(), want.LastDep())
	}
}

// TestImportRefusesLiveDataDir pins the clobber guard: importing into a
// data dir that already holds the stream fails without -force, and with
// it supersedes — next snapshot sequence, existing WAL records covered,
// recovery serving the import rather than replaying stale state onto it.
func TestImportRefusesLiveDataDir(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "in.csv")
	if err := os.WriteFile(csv, []byte(sampleCSV), 0o644); err != nil {
		t.Fatal(err)
	}

	// Seed the data dir with live stream state the tvgserve way: a
	// create plus one acked batch, both in the WAL.
	st, _, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	seeded, _, err := importTrace(strings.NewReader("x,0,1,1,2\n"), 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.StreamCreated("imported", seeded); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	err = run([]string{"-in", csv, "-stream", "imported", "-data-dir", dir}, &out)
	if err == nil || !strings.Contains(err.Error(), "-force") {
		t.Fatalf("import into a live data dir: want refusal suggesting -force, got %v", err)
	}
	if err := run([]string{"-in", csv, "-stream", "imported", "-data-dir", dir, "-force"}, &out); err != nil {
		t.Fatalf("forced import: %v", err)
	}

	want, _, err := importTrace(strings.NewReader(sampleCSV), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	snap, _, err := store.ReadSnapshotFile(store.SnapshotPath(dir, "imported", 1))
	if err != nil {
		t.Fatal(err)
	}
	if snap.CoveredLSN == 0 {
		t.Fatal("forced import left the stream's WAL records uncovered")
	}
	st2, recovered, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	set := recovered["imported"]
	if set == nil || set.NumContacts() != want.NumContacts() {
		t.Fatalf("recovery did not serve the forced import: %v", recovered)
	}
}
